(* Elaboration methodology (Section IV-C), including the Fig. 6 example:
   elaborate a two-location automaton at "Fall-Back" with A'vent. *)

open Pte_hybrid

(* Fig. 6(a): one data state variable x; locations Fall-Back and Risky. *)
let fig6_parent =
  Automaton.make ~name:"fig6" ~vars:[ "x" ]
    ~locations:
      [
        Location.make ~flow:(Flow.Rates [ ("x", 1.0) ]) "Fall-Back";
        Location.make ~kind:Location.Risky ~flow:(Flow.Rates [ ("x", 1.0) ]) "Risky";
      ]
    ~edges:
      [
        Edge.make ~guard:[ Guard.atom "x" Guard.Ge 5.0 ]
          ~reset:(Reset.set "x" 0.0) ~src:"Fall-Back" ~dst:"Risky" ();
        Edge.make ~guard:[ Guard.atom "x" Guard.Ge 2.0 ]
          ~reset:(Reset.set "x" 0.0) ~src:"Risky" ~dst:"Fall-Back" ();
      ]
    ~initial_location:"Fall-Back" ()

let vent = Pte_tracheotomy.Ventilator.stand_alone

let elaborated () = Elaboration.atomic_exn fig6_parent "Fall-Back" vent

let test_fig6_structure () =
  let a'' = elaborated () in
  let names = Automaton.location_names a'' in
  Alcotest.(check bool) "Fall-Back gone" false (List.mem "Fall-Back" names);
  Alcotest.(check bool) "PumpOut present" true (List.mem "PumpOut" names);
  Alcotest.(check bool) "PumpIn present" true (List.mem "PumpIn" names);
  Alcotest.(check bool) "Risky kept" true (List.mem "Risky" names);
  Alcotest.(check int) "3 locations" 3 (List.length names)

let test_fig6_edges () =
  let a'' = elaborated () in
  let has ~src ~dst =
    List.exists
      (fun (e : Edge.t) -> e.Edge.src = src && e.Edge.dst = dst)
      a''.Automaton.edges
  in
  (* egress to Risky duplicated from every child location *)
  Alcotest.(check bool) "PumpOut->Risky" true (has ~src:"PumpOut" ~dst:"Risky");
  Alcotest.(check bool) "PumpIn->Risky" true (has ~src:"PumpIn" ~dst:"Risky");
  (* ingress goes to the child's initial location only — the paper notes
     there is no edge from Risky to PumpIn *)
  Alcotest.(check bool) "Risky->PumpOut" true (has ~src:"Risky" ~dst:"PumpOut");
  Alcotest.(check bool) "no Risky->PumpIn" false (has ~src:"Risky" ~dst:"PumpIn");
  (* child's own edges survive *)
  Alcotest.(check bool) "PumpOut->PumpIn" true (has ~src:"PumpOut" ~dst:"PumpIn")

let test_fig6_initial_retargeted () =
  let a'' = elaborated () in
  Alcotest.(check string) "initial" "PumpOut" a''.Automaton.initial_location

let test_fig6_vars_merged () =
  let a'' = elaborated () in
  Alcotest.(check bool) "x kept" true (List.mem "x" a''.Automaton.vars);
  Alcotest.(check bool) "Hvent added" true (List.mem "Hvent" a''.Automaton.vars)

let test_child_inherits_kind () =
  (* elaborate the Risky location instead: children become risky *)
  let a'' = Elaboration.atomic_exn fig6_parent "Risky" vent in
  Alcotest.(check bool) "PumpOut risky" true (Automaton.is_risky a'' "PumpOut");
  Alcotest.(check bool) "PumpIn risky" true (Automaton.is_risky a'' "PumpIn")

let test_parent_flow_continues_in_child () =
  (* x keeps its Fall-Back dynamics inside the child locations *)
  let a'' = elaborated () in
  let pump_out = Automaton.location_exn a'' "PumpOut" in
  let rates =
    Flow.derivatives pump_out.Location.flow ~time:0.0 (Valuation.zero [ "x"; "Hvent" ])
  in
  Alcotest.(check (float 0.0)) "x rate 1" 1.0 (List.assoc "x" rates);
  Alcotest.(check (float 0.0)) "H rate -0.1" (-0.1) (List.assoc "Hvent" rates)

let test_elaborated_validates () =
  match Automaton.validate (elaborated ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (String.concat "; " e)

let test_behaviour () =
  (* the composite behaves: pumps for 5 s, jumps to Risky for 2 s (child
     vars frozen), then pumps again from PumpOut with Hvent preserved *)
  let a'' = elaborated () in
  let exec = Executor.create (System.make ~name:"s" [ a'' ]) in
  Executor.run exec ~until:4.9;
  Alcotest.(check bool) "pumping" true
    (List.mem (Executor.location_of exec "fig6") [ "PumpOut"; "PumpIn" ]);
  Executor.run exec ~until:5.5;
  Alcotest.(check string) "risky" "Risky" (Executor.location_of exec "fig6");
  let h_at_freeze = Executor.value_of exec "fig6" "Hvent" in
  Executor.run exec ~until:6.9;
  Alcotest.(check bool) "child frozen outside" true
    (Float.abs (Executor.value_of exec "fig6" "Hvent" -. h_at_freeze) < 1e-9);
  Executor.run exec ~until:7.5;
  Alcotest.(check string) "back in child" "PumpOut"
    (Executor.location_of exec "fig6")

let test_rejects_non_independent () =
  (* child sharing the parent's variable x *)
  let clash =
    Automaton.make ~name:"clash" ~vars:[ "x" ]
      ~locations:[ Location.make "C" ]
      ~edges:[] ~initial_location:"C" ()
  in
  match Elaboration.atomic fig6_parent "Fall-Back" clash with
  | Error (Elaboration.Not_independent _) -> ()
  | _ -> Alcotest.fail "expected Not_independent"

let test_rejects_non_simple () =
  let not_simple =
    Automaton.make ~name:"ns" ~vars:[ "y" ]
      ~locations:
        [
          Location.make ~invariant:[ Guard.atom "y" Guard.Le 1.0 ] "N1";
          Location.make "N2";
        ]
      ~edges:[] ~initial_location:"N1" ()
  in
  match Elaboration.atomic fig6_parent "Fall-Back" not_simple with
  | Error (Elaboration.Not_simple _) -> ()
  | _ -> Alcotest.fail "expected Not_simple"

let test_rejects_unknown_location () =
  match Elaboration.atomic fig6_parent "Nowhere" vent with
  | Error (Elaboration.No_such_location _) -> ()
  | _ -> Alcotest.fail "expected No_such_location"

let test_parallel_rejects_duplicates () =
  match Elaboration.parallel fig6_parent [ ("Fall-Back", vent); ("Fall-Back", vent) ] with
  | Error (Elaboration.Duplicate_target _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_target"

let test_parallel_two_targets () =
  let child2 =
    Automaton.make ~name:"child2" ~vars:[ "z" ]
      ~locations:[ Location.make ~flow:(Flow.Rates [ ("z", 1.0) ]) "Z0" ]
      ~edges:[] ~initial_location:"Z0" ()
  in
  let a'' =
    Elaboration.parallel_exn fig6_parent
      [ ("Fall-Back", vent); ("Risky", child2) ]
  in
  let names = Automaton.location_names a'' in
  Alcotest.(check bool) "both elaborated" true
    (List.mem "PumpOut" names && List.mem "Z0" names
    && (not (List.mem "Fall-Back" names))
    && not (List.mem "Risky" names))

let test_elaborates_audit () =
  let design = elaborated () in
  Alcotest.(check bool) "audit passes" true
    (Elaboration.elaborates ~pattern:fig6_parent ~design);
  (* removing a pattern variable must fail the audit *)
  let broken = { design with Automaton.vars = [ "Hvent" ] } in
  Alcotest.(check bool) "audit fails" false
    (Elaboration.elaborates ~pattern:fig6_parent ~design:broken)

let suite =
  [
    ( "hybrid.elaboration",
      [
        Alcotest.test_case "Fig 6 structure" `Quick test_fig6_structure;
        Alcotest.test_case "Fig 6 edges" `Quick test_fig6_edges;
        Alcotest.test_case "initial retargeted" `Quick test_fig6_initial_retargeted;
        Alcotest.test_case "vars merged" `Quick test_fig6_vars_merged;
        Alcotest.test_case "child inherits kind" `Quick test_child_inherits_kind;
        Alcotest.test_case "parent flow continues" `Quick
          test_parent_flow_continues_in_child;
        Alcotest.test_case "elaborated validates" `Quick test_elaborated_validates;
        Alcotest.test_case "composite behaviour" `Quick test_behaviour;
        Alcotest.test_case "rejects non-independent" `Quick
          test_rejects_non_independent;
        Alcotest.test_case "rejects non-simple" `Quick test_rejects_non_simple;
        Alcotest.test_case "rejects unknown location" `Quick
          test_rejects_unknown_location;
        Alcotest.test_case "parallel rejects duplicates" `Quick
          test_parallel_rejects_duplicates;
        Alcotest.test_case "parallel two targets" `Quick test_parallel_two_targets;
        Alcotest.test_case "structural audit" `Quick test_elaborates_audit;
      ] );
  ]
