(* Valuations: totality convention, Euler advance, interpolation. *)

open Pte_hybrid

let test_zero_and_defaults () =
  let v = Valuation.zero [ "a"; "b" ] in
  Alcotest.(check (float 0.0)) "a" 0.0 (Valuation.get v "a");
  Alcotest.(check (float 0.0)) "undeclared is 0" 0.0 (Valuation.get v "zzz")

let test_set_get_update () =
  let v = Valuation.set Valuation.empty "x" 2.0 in
  let v = Valuation.update v "x" (fun x -> x *. 3.0) in
  Alcotest.(check (float 1e-12)) "updated" 6.0 (Valuation.get v "x")

let test_advance () =
  let v = Valuation.of_list [ ("c", 1.0); ("h", 0.3) ] in
  let v' = Valuation.advance v [ ("c", 1.0); ("h", -0.1) ] 0.5 in
  Alcotest.(check (float 1e-12)) "clock" 1.5 (Valuation.get v' "c");
  Alcotest.(check (float 1e-12)) "height" 0.25 (Valuation.get v' "h");
  (* unlisted variables frozen *)
  let v'' = Valuation.advance v [ ("c", 1.0) ] 1.0 in
  Alcotest.(check (float 1e-12)) "frozen" 0.3 (Valuation.get v'' "h")

let test_interpolate () =
  let a = Valuation.of_list [ ("x", 0.0) ] in
  let b = Valuation.of_list [ ("x", 10.0) ] in
  let mid = Valuation.interpolate ~from:a ~target:b 0.25 in
  Alcotest.(check (float 1e-12)) "quarter point" 2.5 (Valuation.get mid "x");
  let zero = Valuation.interpolate ~from:a ~target:b 0.0 in
  Alcotest.(check (float 1e-12)) "alpha 0" 0.0 (Valuation.get zero "x");
  let one = Valuation.interpolate ~from:a ~target:b 1.0 in
  Alcotest.(check (float 1e-12)) "alpha 1" 10.0 (Valuation.get one "x")

let test_equal_eps () =
  let a = Valuation.of_list [ ("x", 1.0) ] in
  let b = Valuation.of_list [ ("x", 1.0 +. 1e-12) ] in
  Alcotest.(check bool) "close" true (Valuation.equal_eps ~eps:1e-9 a b);
  let c = Valuation.of_list [ ("x", 1.1) ] in
  Alcotest.(check bool) "far" false (Valuation.equal_eps ~eps:1e-9 a c)

let prop_advance_linear =
  QCheck.Test.make ~name:"advance is linear in dt" ~count:300
    QCheck.(triple (float_range (-10.) 10.) (float_range (-5.) 5.) (float_range 0. 10.))
    (fun (x0, rate, dt) ->
      let v = Valuation.of_list [ ("x", x0) ] in
      let one = Valuation.advance v [ ("x", rate) ] dt in
      let two_steps =
        Valuation.advance
          (Valuation.advance v [ ("x", rate) ] (dt /. 2.0))
          [ ("x", rate) ] (dt /. 2.0)
      in
      Float.abs (Valuation.get one "x" -. Valuation.get two_steps "x") < 1e-9)

let suite =
  [
    ( "hybrid.valuation",
      [
        Alcotest.test_case "zero/defaults" `Quick test_zero_and_defaults;
        Alcotest.test_case "set/get/update" `Quick test_set_get_update;
        Alcotest.test_case "advance" `Quick test_advance;
        Alcotest.test_case "interpolate" `Quick test_interpolate;
        Alcotest.test_case "equal_eps" `Quick test_equal_eps;
        QCheck_alcotest.to_alcotest prop_advance_linear;
      ] );
  ]
