(* Automaton construction, validation, Definition 2 independence,
   Definition 3 simplicity. *)

open Pte_hybrid

let tiny ?(name = "tiny") ?(vars = [ "c" ]) ?(initial_values = []) () =
  Automaton.make ~name ~vars
    ~locations:
      [
        Location.make ~flow:(Flow.clocks vars) "A";
        Location.make ~kind:Location.Risky ~flow:(Flow.clocks vars) "B";
      ]
    ~edges:
      [
        Edge.make ~guard:[ Guard.atom "c" Guard.Ge 1.0 ]
          ~reset:(Reset.set "c" 0.0) ~src:"A" ~dst:"B" ();
        Edge.make ~guard:[ Guard.atom "c" Guard.Ge 2.0 ]
          ~reset:(Reset.set "c" 0.0) ~src:"B" ~dst:"A" ();
      ]
    ~initial_location:"A" ~initial_values ()

let test_valid () =
  match Automaton.validate (tiny ()) with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "unexpected: %s" (String.concat "; " errs)

let expect_invalid automaton fragment =
  match Automaton.validate automaton with
  | Ok () -> Alcotest.failf "expected validation failure (%s)" fragment
  | Error errs ->
      let all = String.concat "; " errs in
      let contains =
        let n = String.length fragment and h = String.length all in
        let rec go i = i + n <= h && (String.sub all i n = fragment || go (i + 1)) in
        go 0
      in
      if not contains then
        Alcotest.failf "error %S does not mention %S" all fragment

let test_duplicate_locations () =
  let a = tiny () in
  let dup =
    { a with Automaton.locations = a.Automaton.locations @ [ Location.make "A" ] }
  in
  expect_invalid dup "duplicate location"

let test_dangling_edge () =
  let a = tiny () in
  let bad =
    { a with Automaton.edges = Edge.make ~src:"A" ~dst:"Nowhere" () :: a.Automaton.edges }
  in
  expect_invalid bad "unknown destination"

let test_missing_initial () =
  let a = tiny () in
  expect_invalid { a with Automaton.initial_location = "Zed" } "does not exist"

let test_undeclared_guard_var () =
  let a = tiny () in
  let bad =
    {
      a with
      Automaton.edges =
        Edge.make ~guard:[ Guard.atom "ghost" Guard.Ge 0.0 ] ~src:"A" ~dst:"B" ()
        :: a.Automaton.edges;
    }
  in
  expect_invalid bad "undeclared variable"

let test_initial_violating_invariant () =
  let a = tiny () in
  let locations =
    [
      Location.make ~flow:(Flow.clocks [ "c" ])
        ~invariant:[ Guard.atom "c" Guard.Le 0.5 ] "A";
      Location.make ~flow:(Flow.clocks [ "c" ]) "B";
    ]
  in
  expect_invalid
    { a with Automaton.locations; initial_values = [ ("c", 1.0) ] }
    "violates invariant"

let test_risky_partition () =
  let a = tiny () in
  Alcotest.(check bool) "A safe" false (Automaton.is_risky a "A");
  Alcotest.(check bool) "B risky" true (Automaton.is_risky a "B");
  Alcotest.(check (list string)) "risky set" [ "B" ] (Automaton.risky_locations a)

let test_initial_valuation () =
  let a = tiny () ~initial_values:[ ("c", 0.25) ] in
  Alcotest.(check (float 0.0)) "explicit" 0.25
    (Valuation.get (Automaton.initial_valuation a) "c")

let test_roots () =
  let a =
    Automaton.make ~name:"talker" ~vars:[]
      ~locations:[ Location.make "L" ]
      ~edges:
        [
          Edge.make ~label:(Label.Send "ping") ~src:"L" ~dst:"L" ();
          Edge.make ~label:(Label.Recv_lossy "pong") ~src:"L" ~dst:"L" ();
          Edge.make ~label:(Label.Internal "tick") ~src:"L" ~dst:"L" ();
        ]
      ~initial_location:"L" ()
  in
  Alcotest.(check bool) "emits ping" true
    (Var.Set.mem "ping" (Automaton.emitted_roots a));
  Alcotest.(check bool) "emits tick" true
    (Var.Set.mem "tick" (Automaton.emitted_roots a));
  Alcotest.(check bool) "listens pong" true
    (Var.Set.mem "pong" (Automaton.listened_roots a));
  Alcotest.(check bool) "does not listen ping" false
    (Var.Set.mem "ping" (Automaton.listened_roots a))

let test_independence () =
  let a = tiny ~name:"a" ~vars:[ "x" ] () in
  let b = tiny ~name:"b" ~vars:[ "y" ] () in
  (* same location names "A"/"B" -> not independent (Definition 2.2) *)
  Alcotest.(check bool) "shared locations" false (Automaton.independent a b);
  let c =
    Automaton.make ~name:"c" ~vars:[ "z" ]
      ~locations:[ Location.make ~flow:(Flow.clocks [ "z" ]) "C1" ]
      ~edges:[] ~initial_location:"C1" ()
  in
  Alcotest.(check bool) "disjoint everything" true (Automaton.independent a c);
  let d =
    Automaton.make ~name:"d" ~vars:[ "x" ]
      ~locations:[ Location.make ~flow:(Flow.clocks [ "x" ]) "D1" ]
      ~edges:[] ~initial_location:"D1" ()
  in
  Alcotest.(check bool) "shared variable" false (Automaton.independent a d)

let test_simplicity () =
  (* A'vent is the paper's canonical simple automaton *)
  Alcotest.(check bool) "A'vent simple" true
    (Automaton.is_simple Pte_tracheotomy.Ventilator.stand_alone);
  (* differing invariants break condition 1 *)
  let not_simple =
    Automaton.make ~name:"ns" ~vars:[ "x" ]
      ~locations:
        [
          Location.make ~invariant:[ Guard.atom "x" Guard.Le 1.0 ] "L1";
          Location.make "L2";
        ]
      ~edges:[] ~initial_location:"L1" ()
  in
  Alcotest.(check bool) "different invariants" false (Automaton.is_simple not_simple);
  (* nonzero initial values break condition 3 *)
  let shifted = tiny ~initial_values:[ ("c", 1.0) ] () in
  Alcotest.(check bool) "nonzero initial" false (Automaton.is_simple shifted)

let test_system_validate () =
  let sys = System.make ~name:"s" [ tiny ~name:"p" (); tiny ~name:"q" () ] in
  (match System.validate sys with
  | Ok () -> ()
  | Error e -> Alcotest.failf "local names should be fine: %s" (String.concat ";" e));
  let dup = System.make ~name:"s" [ tiny ~name:"p" (); tiny ~name:"p" () ] in
  Alcotest.(check bool) "duplicate member name" true
    (Result.is_error (System.validate dup))

let test_system_listeners () =
  let talker =
    Automaton.make ~name:"t" ~vars:[]
      ~locations:[ Location.make "L" ]
      ~edges:[ Edge.make ~label:(Label.Send "evt") ~src:"L" ~dst:"L" () ]
      ~initial_location:"L" ()
  in
  let listener =
    Automaton.make ~name:"l" ~vars:[]
      ~locations:[ Location.make "M" ]
      ~edges:[ Edge.make ~label:(Label.Recv_lossy "evt") ~src:"M" ~dst:"M" () ]
      ~initial_location:"M" ()
  in
  let sys = System.make ~name:"s" [ talker; listener ] in
  Alcotest.(check (list string)) "listener found" [ "l" ]
    (List.map
       (fun (a : Automaton.t) -> a.Automaton.name)
       (System.listeners sys "evt"))

let suite =
  [
    ( "hybrid.automaton",
      [
        Alcotest.test_case "valid automaton" `Quick test_valid;
        Alcotest.test_case "duplicate locations" `Quick test_duplicate_locations;
        Alcotest.test_case "dangling edge" `Quick test_dangling_edge;
        Alcotest.test_case "missing initial" `Quick test_missing_initial;
        Alcotest.test_case "undeclared guard var" `Quick test_undeclared_guard_var;
        Alcotest.test_case "initial violates invariant" `Quick
          test_initial_violating_invariant;
        Alcotest.test_case "risky partition" `Quick test_risky_partition;
        Alcotest.test_case "initial valuation" `Quick test_initial_valuation;
        Alcotest.test_case "emitted/listened roots" `Quick test_roots;
        Alcotest.test_case "Definition 2 independence" `Quick test_independence;
        Alcotest.test_case "Definition 3 simplicity" `Quick test_simplicity;
        Alcotest.test_case "system validation" `Quick test_system_validate;
        Alcotest.test_case "system listeners" `Quick test_system_listeners;
      ] );
  ]
