(* Differential testing of the PTE monitor against a brute-force
   reference: random two-entity timelines are checked both by the
   interval-based monitor and by dense time-sampling of the rule
   definitions. The two verdicts must agree. *)

open Pte_core
open Pte_hybrid

let horizon = 100.0
let bound = 25.0
let t_risky = 3.0
let t_safe = 1.5

let spec =
  Rules.make ~order:[ "outer"; "inner" ]
    ~dwell_bounds:[ ("outer", bound); ("inner", bound) ]
    ~safeguards:[ { Params.enter_risky_min = t_risky; exit_safe_min = t_safe } ]

(* A timeline is a list of disjoint risky intervals within [0, horizon). *)
let timeline_gen =
  QCheck.Gen.(
    let* n = int_range 0 3 in
    let* points = list_repeat (2 * n) (float_range 0.5 (horizon -. 1.0)) in
    let sorted = List.sort Float.compare points in
    let rec pair = function
      | a :: b :: rest -> (a, b) :: pair rest
      | _ -> []
    in
    (* drop degenerate/touching intervals to keep the reference simple *)
    let rec well_separated = function
      | (a1, b1) :: ((a2, _) :: _ as rest) ->
          b1 -. a1 > 0.2 && a2 -. b1 > 0.2 && well_separated rest
      | [ (a, b) ] -> b -. a > 0.2
      | [] -> true
    in
    let intervals = pair sorted in
    return (if well_separated intervals then intervals else []))

let trace_of_timelines outer inner =
  let events entity spans =
    List.concat_map
      (fun (a, b) ->
        [
          { Trace.time = a;
            event =
              Trace.Transition
                { automaton = entity; src = "S"; dst = "R"; label = None;
                  forced = false } };
          { Trace.time = b;
            event =
              Trace.Transition
                { automaton = entity; src = "R"; dst = "S"; label = None;
                  forced = false } };
        ])
      spans
  in
  List.sort
    (fun a b -> Float.compare a.Trace.time b.Trace.time)
    (events "outer" outer @ events "inner" inner)

(* Reference: dense sampling + direct event checks. *)
let reference_ok outer inner =
  let inside spans t = List.exists (fun (a, b) -> a <= t && t < b) spans in
  let dt = 0.05 in
  let steps = int_of_float (horizon /. dt) in
  let p2 = ref true in
  for i = 0 to steps - 1 do
    let t = Float.of_int i *. dt in
    if inside inner t && not (inside outer t) then p2 := false
  done;
  let dwell_ok spans =
    List.for_all (fun (a, b) -> b -. a <= bound +. 1e-9) spans
  in
  (* p1: at each inner start, outer must have been risky throughout
     [s - t_risky, s] *)
  let p1 =
    List.for_all
      (fun (s, _) ->
        List.exists (fun (a, b) -> a <= s -. t_risky +. 1e-9 && b >= s) outer)
      inner
  in
  (* p3: at each inner end, outer must stay risky until e + t_safe *)
  let p3 =
    List.for_all
      (fun (_, e) ->
        List.exists (fun (a, b) -> a <= e && b >= e +. t_safe -. 1e-9) outer)
      inner
  in
  !p2 && dwell_ok outer && dwell_ok inner && p1 && p3

let prop_monitor_agrees_with_reference =
  QCheck.Test.make ~name:"monitor = brute-force reference on random timelines"
    ~count:500
    (QCheck.make
       QCheck.Gen.(pair timeline_gen timeline_gen)
       ~print:(fun (o, i) ->
         Fmt.str "outer=%a inner=%a"
           Fmt.(list ~sep:comma (pair ~sep:(any "..") float float))
           o
           Fmt.(list ~sep:comma (pair ~sep:(any "..") float float))
           i))
    (fun (outer, inner) ->
      let trace = trace_of_timelines outer inner in
      let report =
        Monitor.analyze trace spec
          ~risky:(fun _ l -> String.equal l "R")
          ~initial:(fun _ -> "S")
          ~horizon
      in
      Monitor.ok report = reference_ok outer inner)

let suite =
  [
    ( "core.monitor-reference",
      [ QCheck_alcotest.to_alcotest prop_monitor_agrees_with_reference ] );
  ]
