(* Difference Bound Matrices: the zone algebra under the model checker. *)

open Pte_mc

let test_bound_ordering () =
  Alcotest.(check bool) "strict tighter" true
    (Bound.compare (Bound.lt 5.0) (Bound.le 5.0) < 0);
  Alcotest.(check bool) "smaller tighter" true
    (Bound.compare (Bound.le 3.0) (Bound.le 5.0) < 0);
  Alcotest.(check bool) "inf loosest" true
    (Bound.compare Bound.infinity_ (Bound.le 1e9) > 0);
  Alcotest.(check bool) "min" true
    (Bound.equal (Bound.min (Bound.le 2.0) (Bound.lt 2.0)) (Bound.lt 2.0))

let test_bound_add () =
  Alcotest.(check bool) "le+le" true
    (Bound.equal (Bound.add (Bound.le 2.0) (Bound.le 3.0)) (Bound.le 5.0));
  Alcotest.(check bool) "le+lt strict" true
    (Bound.equal (Bound.add (Bound.le 2.0) (Bound.lt 3.0)) (Bound.lt 5.0));
  Alcotest.(check bool) "inf absorbs" true
    (Bound.equal (Bound.add Bound.infinity_ (Bound.le 1.0)) Bound.infinity_)

let test_bound_consistency () =
  Alcotest.(check bool) "x<=3 & x>=3 ok" true
    (Bound.consistent (Bound.le 3.0) (Bound.le (-3.0)));
  Alcotest.(check bool) "x<3 & x>=3 empty" false
    (Bound.consistent (Bound.lt 3.0) (Bound.le (-3.0)));
  Alcotest.(check bool) "x<=2 & x>=3 empty" false
    (Bound.consistent (Bound.le 2.0) (Bound.le (-3.0)))

let test_zero_zone () =
  let z = Dbm.zero ~clocks:3 in
  Alcotest.(check bool) "not empty" false (Dbm.is_empty z);
  for i = 1 to 3 do
    Alcotest.(check bool) "sup 0" true (Bound.equal (Dbm.sup z i) (Bound.le 0.0));
    Alcotest.(check (float 0.0)) "inf 0" 0.0 (Dbm.inf z i)
  done

let test_up_and_constrain () =
  let z = Dbm.zero ~clocks:2 in
  Dbm.up z;
  Alcotest.(check bool) "unbounded above" true
    (Bound.equal (Dbm.sup z 1) Bound.infinity_);
  (* clocks advance together: x1 - x2 stays 0 *)
  Alcotest.(check bool) "diff preserved" true
    (Bound.equal (Dbm.get z 1 2) (Bound.le 0.0));
  (* constrain x1 <= 5: x2 also <= 5 via the diff *)
  Alcotest.(check bool) "still nonempty" true
    (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Le ~const:5.0);
  Alcotest.(check bool) "x2 bounded too" true
    (Bound.compare (Dbm.sup z 2) (Bound.le 5.0) <= 0)

let test_empty_after_contradiction () =
  let z = Dbm.zero ~clocks:1 in
  Dbm.up z;
  Alcotest.(check bool) "x >= 5 fine" true
    (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Ge ~const:5.0);
  Alcotest.(check bool) "x < 3 contradicts" false
    (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Lt ~const:3.0)

let test_reset () =
  let z = Dbm.zero ~clocks:2 in
  Dbm.up z;
  ignore (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Ge ~const:4.0);
  ignore (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Le ~const:6.0);
  Dbm.reset z 2;
  Alcotest.(check bool) "x2 = 0" true (Bound.equal (Dbm.sup z 2) (Bound.le 0.0));
  (* x1 retains its bounds *)
  Alcotest.(check bool) "x1 kept" true
    (Bound.equal (Dbm.sup z 1) (Bound.le 6.0) && Dbm.inf z 1 = 4.0);
  (* and the diff x1 - x2 now mirrors x1 *)
  Alcotest.(check bool) "diff x1-x2" true
    (Bound.equal (Dbm.get z 1 2) (Bound.le 6.0))

let test_free () =
  let z = Dbm.zero ~clocks:2 in
  Dbm.up z;
  ignore (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Le ~const:3.0);
  ignore (Dbm.constrain_atom z ~clock:2 ~cmp:Dbm.Le ~const:3.0);
  Dbm.free z 2;
  Alcotest.(check bool) "x2 unbounded" true
    (Bound.equal (Dbm.sup z 2) Bound.infinity_);
  Alcotest.(check (float 0.0)) "x2 >= 0" 0.0 (Dbm.inf z 2);
  Alcotest.(check bool) "x1 untouched" true
    (Bound.equal (Dbm.sup z 1) (Bound.le 3.0));
  Alcotest.(check bool) "no stale diff" true
    (Bound.equal (Dbm.get z 2 1) Bound.infinity_);
  Alcotest.(check bool) "still canonical-consistent" false (Dbm.is_empty z)

let test_includes () =
  let big = Dbm.zero ~clocks:1 in
  Dbm.up big;
  ignore (Dbm.constrain_atom big ~clock:1 ~cmp:Dbm.Le ~const:10.0);
  let small = Dbm.copy big in
  ignore (Dbm.constrain_atom small ~clock:1 ~cmp:Dbm.Le ~const:5.0);
  Alcotest.(check bool) "big includes small" true (Dbm.includes big small);
  Alcotest.(check bool) "small excludes big" false (Dbm.includes small big);
  Alcotest.(check bool) "reflexive" true (Dbm.includes big big)

let test_eq_atom () =
  let z = Dbm.zero ~clocks:1 in
  Dbm.up z;
  Alcotest.(check bool) "pin to 7" true
    (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Eq ~const:7.0);
  Alcotest.(check bool) "sup 7" true (Bound.equal (Dbm.sup z 1) (Bound.le 7.0));
  Alcotest.(check (float 0.0)) "inf 7" 7.0 (Dbm.inf z 1)

let test_per_clock_normalization () =
  let z = Dbm.zero ~clocks:1 in
  Dbm.up z;
  ignore (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Le ~const:100.0);
  ignore (Dbm.constrain_atom z ~clock:1 ~cmp:Dbm.Ge ~const:90.0);
  (* clock 1's relevant constants stop at 5: its bounds must blur *)
  Dbm.normalize_per_clock z ~k:[| 0.0; 5.0 |];
  Alcotest.(check bool) "upper blurred" true
    (Bound.equal (Dbm.sup z 1) Bound.infinity_);
  Alcotest.(check bool) "lower blurred to >5" true (Dbm.inf z 1 <= 5.0 +. 1e-9);
  (* the blurred zone contains the original *)
  let original = Dbm.zero ~clocks:1 in
  Dbm.up original;
  ignore (Dbm.constrain_atom original ~clock:1 ~cmp:Dbm.Le ~const:100.0);
  ignore (Dbm.constrain_atom original ~clock:1 ~cmp:Dbm.Ge ~const:90.0);
  Alcotest.(check bool) "over-approximation" true (Dbm.includes z original)

let prop_canonical_idempotent =
  (* canonicalize twice = canonicalize once, on randomly constrained zones *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 6)
        (triple (int_range 1 3) (int_range 0 1) (float_range 0.0 20.0)))
  in
  QCheck.Test.make ~name:"canonicalization idempotent" ~count:200 (QCheck.make gen)
    (fun atoms ->
      let z = Dbm.zero ~clocks:3 in
      Dbm.up z;
      let alive =
        List.for_all
          (fun (clock, dir, const) ->
            let cmp = if dir = 0 then Dbm.Le else Dbm.Ge in
            Dbm.constrain_atom z ~clock ~cmp ~const)
          atoms
      in
      if not alive then true
      else begin
        let once = Dbm.copy z in
        Dbm.canonicalize once;
        let twice = Dbm.copy once in
        Dbm.canonicalize twice;
        Dbm.equal once twice
      end)

let prop_constrain_shrinks =
  QCheck.Test.make ~name:"constraining never grows a zone" ~count:200
    QCheck.(pair (QCheck.make (QCheck.Gen.int_range 1 3)) (float_range 0.0 20.0))
    (fun (clock, const) ->
      let z = Dbm.zero ~clocks:3 in
      Dbm.up z;
      let before = Dbm.copy z in
      if Dbm.constrain_atom z ~clock ~cmp:Dbm.Le ~const then
        Dbm.includes before z
      else true)

let suite =
  [
    ( "mc.dbm",
      [
        Alcotest.test_case "bound ordering" `Quick test_bound_ordering;
        Alcotest.test_case "bound addition" `Quick test_bound_add;
        Alcotest.test_case "bound consistency" `Quick test_bound_consistency;
        Alcotest.test_case "zero zone" `Quick test_zero_zone;
        Alcotest.test_case "up + constrain" `Quick test_up_and_constrain;
        Alcotest.test_case "contradiction empties" `Quick
          test_empty_after_contradiction;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "free" `Quick test_free;
        Alcotest.test_case "includes" `Quick test_includes;
        Alcotest.test_case "eq atom" `Quick test_eq_atom;
        Alcotest.test_case "per-clock normalization" `Quick
          test_per_clock_normalization;
        QCheck_alcotest.to_alcotest prop_canonical_idempotent;
        QCheck_alcotest.to_alcotest prop_constrain_shrinks;
      ] );
  ]
