(* The multiple-initializer extension: structure, constraint checking,
   simulation safety with interleaved initiators, and a bounded model-
   checking sweep. *)

open Pte_core
open Pte_hybrid

let params = Params.case_study
let both = { Multi.params; initiators = [ 1; 2 ] }

let test_config_validation () =
  Alcotest.(check bool) "both ok" true (Result.is_ok (Multi.validate_config both));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Multi.validate_config { both with Multi.initiators = [] }));
  Alcotest.(check bool) "unordered rejected" true
    (Result.is_error
       (Multi.validate_config { both with Multi.initiators = [ 2; 1 ] }));
  Alcotest.(check bool) "out of range rejected" true
    (Result.is_error
       (Multi.validate_config { both with Multi.initiators = [ 1; 3 ] }));
  Alcotest.(check bool) "top entity must initiate" true
    (Result.is_error
       (Multi.validate_config { both with Multi.initiators = [ 1 ] }))

let test_constraint_check () =
  match Multi.check both with
  | Ok outcomes ->
      Alcotest.(check bool) "all ok" true (Constraints.all_ok outcomes);
      (* 7 base conditions + one c3 instance per initiator *)
      Alcotest.(check int) "count" 9 (List.length outcomes)
  | Error e -> Alcotest.fail e

let test_constraint_catches_low_t_req () =
  (* ξ2 as initiator needs T_req > (2-1)*T_wait = 3; 2.0 breaks only the
     per-initiator instance, not base c3 for... base c3 also uses (N-1);
     so push T_wait up instead: T_req = 5, T_wait = 4 -> base c3 needs
     4 < 5 (ok for k=1: 0 < 5) but k=2 needs 4 < 5 ok... use N=3. *)
  let p3 =
    Synthesis.synthesize_exn
      (Synthesis.default_requirements
         ~entity_names:[ "a"; "b"; "c" ]
         ~safeguards:
           [
             { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
             { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
           ])
  in
  (* T_req just above 1*T_wait: fine for initiator k=2, violating k=3 *)
  let p3 = { p3 with Params.t_req_max = 1.5 *. p3.Params.t_wait_max } in
  let config = { Multi.params = p3; initiators = [ 2; 3 ] } in
  match Multi.check config with
  | Ok outcomes ->
      let failing =
        List.filter (fun (o : Constraints.outcome) -> not o.Constraints.ok) outcomes
      in
      Alcotest.(check bool) "exactly the k=3 instance fails" true
        (List.length failing >= 1
        && List.for_all
             (fun (o : Constraints.outcome) ->
               o.Constraints.condition = Constraints.C3)
             failing)
  | Error e -> Alcotest.fail e

let test_system_builds () =
  let system = Multi.system both in
  (match System.validate system with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (String.concat "; " e));
  Alcotest.(check int) "supervisor + 2 remotes" 3
    (List.length system.System.automata);
  (* the dual-role ventilator has both participant and initiator paths *)
  let vent = System.find_exn system "ventilator" in
  let names = Automaton.location_names vent in
  Alcotest.(check bool) "participant path" true (List.mem "Risky Core" names);
  Alcotest.(check bool) "initiator path" true
    (List.mem "Risky Core (init)" names);
  Alcotest.(check bool) "initiator risky marked" true
    (Automaton.is_risky vent "Risky Core (init)")

let test_wellformed () =
  let system = Multi.system both in
  List.iter
    (fun (a : Automaton.t) ->
      match Wellformed.check a with
      | [] -> ()
      | issues ->
          Alcotest.failf "%s: %a" a.Automaton.name
            Fmt.(list ~sep:(any "; ") Wellformed.pp_issue)
            issues)
    system.System.automata

let run_multi ~seed ~horizon =
  let system = Multi.system both in
  let rng = Pte_util.Rng.create seed in
  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:[ "ventilator"; "laser" ]
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.3)
      ~rng ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Executor.default_config with dt = 0.01 }
      ~net ~seed:(seed + 1) system
  in
  (* both initiators fire requests; cancels while emitting *)
  List.iter
    (fun (automaton, req, cancel) ->
      Pte_sim.Scenario.exponential_stimulus engine ~mean:25.0 ~automaton
        ~armed_in:"Fall-Back" ~root:req ();
      let armed_in =
        if String.equal automaton "laser" then "Risky Core"
        else "Risky Core (init)"
      in
      Pte_sim.Scenario.exponential_stimulus engine ~mean:8.0 ~automaton
        ~armed_in ~root:cancel ())
    (Multi.stimuli both);
  Pte_sim.Engine.run engine ~until:horizon;
  (system, Pte_sim.Engine.trace engine)

let test_simulation_safe () =
  let horizon = 400.0 in
  let system, trace = run_multi ~seed:33 ~horizon in
  let spec = Rules.of_params params in
  let report = Monitor.analyze_system trace system spec ~horizon in
  Alcotest.(check int)
    (Fmt.str "%a" Monitor.pp_report report)
    0 (Monitor.episodes report);
  (* both initiators actually ran sessions *)
  let vent_solo =
    Pte_sim.Metrics.entries trace ~automaton:"ventilator"
      ~location:"Risky Core (init)"
  in
  let laser_sessions =
    Pte_sim.Metrics.entries trace ~automaton:"laser" ~location:"Risky Core"
  in
  Alcotest.(check bool)
    (Fmt.str "vent-initiated %d, laser-initiated %d" vent_solo laser_sessions)
    true
    (vent_solo >= 1 && laser_sessions >= 1)

let prop_multi_safe =
  QCheck.Test.make ~name:"multi-initializer trials never violate PTE" ~count:8
    QCheck.(make QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let horizon = 250.0 in
      let system, trace = run_multi ~seed ~horizon in
      let report =
        Monitor.analyze_system trace system (Rules.of_params params) ~horizon
      in
      Monitor.episodes report = 0)

let test_mc_bounded_clean () =
  let system = Multi.system both in
  let spec = Rules.of_params params in
  let r =
    Pte_mc.Reach.check ~config:{ Pte_mc.Reach.default_config with max_states = 30_000 }
      ~system ~spec ()
  in
  Alcotest.(check int) "no violations in budget" 0
    (List.length r.Pte_mc.Reach.violations)

let test_mc_finds_no_lease_violation () =
  let system = Multi.system ~lease:false both in
  let spec = Rules.of_params params in
  let r =
    Pte_mc.Reach.check
      ~config:
        { Pte_mc.Reach.default_config with max_states = 60_000; stop_at_first = true }
      ~system ~spec ()
  in
  Alcotest.(check bool) "rule-1 breach found" true
    (List.exists
       (fun (v : Pte_mc.Reach.violation) ->
         match v.Pte_mc.Reach.kind with
         | Pte_mc.Reach.Rule1_dwell _ -> true
         | _ -> false)
       r.Pte_mc.Reach.violations)

let suite =
  [
    ( "core.multi",
      [
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "constraint check" `Quick test_constraint_check;
        Alcotest.test_case "per-initiator c3" `Quick
          test_constraint_catches_low_t_req;
        Alcotest.test_case "system builds" `Quick test_system_builds;
        Alcotest.test_case "wellformed" `Quick test_wellformed;
        Alcotest.test_case "simulation safe (both initiators)" `Quick
          test_simulation_safe;
        QCheck_alcotest.to_alcotest prop_multi_safe;
        Alcotest.test_case "mc bounded clean" `Slow test_mc_bounded_clean;
        Alcotest.test_case "mc finds no-lease breach" `Quick
          test_mc_finds_no_lease_violation;
      ] );
  ]
