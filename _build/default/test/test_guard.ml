(* Guard atoms and conjunctions: evaluation and analytic crossing times. *)

open Pte_hybrid

let v bindings = Valuation.of_list bindings

let test_always () =
  Alcotest.(check bool) "true guard" true (Guard.holds Guard.always (v []))

let test_atom_holds () =
  let checks =
    [
      (Guard.atom "x" Guard.Lt 5.0, 4.9, true);
      (Guard.atom "x" Guard.Lt 5.0, 5.1, false);
      (Guard.atom "x" Guard.Le 5.0, 5.0, true);
      (Guard.atom "x" Guard.Gt 5.0, 5.1, true);
      (Guard.atom "x" Guard.Gt 5.0, 4.9, false);
      (Guard.atom "x" Guard.Ge 5.0, 5.0, true);
      (Guard.atom "x" Guard.Eq 5.0, 5.0, true);
      (Guard.atom "x" Guard.Eq 5.0, 5.0001, false);
    ]
  in
  List.iter
    (fun (atom, value, expect) ->
      Alcotest.(check bool)
        (Fmt.str "%a at %g" Guard.pp_atom atom value)
        expect
        (Guard.atom_holds atom value))
    checks

let test_eps_slack () =
  (* a clock landing epsilon short of its threshold still enables the
     guard — required for the fixed-step executor *)
  let atom = Guard.atom "c" Guard.Ge 3.0 in
  Alcotest.(check bool) "within eps" true (Guard.atom_holds atom (3.0 -. 1e-12))

let test_conjunction () =
  let g = [ Guard.atom "x" Guard.Ge 1.0; Guard.atom "y" Guard.Lt 2.0 ] in
  Alcotest.(check bool) "both hold" true (Guard.holds g (v [ ("x", 1.5); ("y", 0.0) ]));
  Alcotest.(check bool) "one fails" false (Guard.holds g (v [ ("x", 0.5); ("y", 0.0) ]));
  Alcotest.(check bool) "other fails" false
    (Guard.holds g (v [ ("x", 1.5); ("y", 2.5) ]))

let test_missing_var_is_zero () =
  let g = [ Guard.atom "unset" Guard.Ge 0.0 ] in
  Alcotest.(check bool) "defaults to 0" true (Guard.holds g (v []))

let check_opt_float name expect actual =
  match (expect, actual) with
  | None, None -> ()
  | Some e, Some a when Float.abs (e -. a) < 1e-9 -> ()
  | _ ->
      Alcotest.failf "%s: expected %a, got %a" name
        Fmt.(option ~none:(any "none") float)
        expect
        Fmt.(option ~none:(any "none") float)
        actual

let test_time_to_satisfy () =
  let atom = Guard.atom "c" Guard.Ge 10.0 in
  check_opt_float "already true" (Some 0.0)
    (Guard.time_to_satisfy atom ~value:11.0 ~rate:1.0);
  check_opt_float "reaches in 4s" (Some 4.0)
    (Guard.time_to_satisfy atom ~value:6.0 ~rate:1.0);
  check_opt_float "wrong direction" None
    (Guard.time_to_satisfy atom ~value:6.0 ~rate:(-1.0));
  check_opt_float "frozen" None (Guard.time_to_satisfy atom ~value:6.0 ~rate:0.0);
  let down = Guard.atom "h" Guard.Le 0.0 in
  check_opt_float "descending" (Some 3.0)
    (Guard.time_to_satisfy down ~value:0.3 ~rate:(-0.1))

let test_time_to_violate () =
  let atom = Guard.atom "h" Guard.Le 0.3 in
  check_opt_float "hits ceiling" (Some 2.0)
    (Guard.time_to_violate atom ~value:0.1 ~rate:0.1);
  check_opt_float "moving away" None
    (Guard.time_to_violate atom ~value:0.1 ~rate:(-0.1));
  check_opt_float "already violated" (Some 0.0)
    (Guard.time_to_violate atom ~value:0.5 ~rate:0.1)

let test_invariant_horizon () =
  let invariant =
    [ Guard.atom "h" Guard.Ge 0.0; Guard.atom "h" Guard.Le 0.3 ]
  in
  let rate_of _ = -0.1 in
  match Guard.invariant_horizon invariant (v [ ("h", 0.2) ]) rate_of with
  | Some d -> Alcotest.(check bool) "2s to floor" true (Float.abs (d -. 2.0) < 1e-9)
  | None -> Alcotest.fail "expected finite horizon"

let prop_time_to_satisfy_correct =
  QCheck.Test.make ~name:"time_to_satisfy lands on a satisfying value"
    ~count:500
    QCheck.(triple (float_range (-50.) 50.) (float_range (-5.) 5.) (float_range (-50.) 50.))
    (fun (value, rate, bound) ->
      let atom = Guard.atom "x" Guard.Ge bound in
      match Guard.time_to_satisfy atom ~value ~rate with
      | None -> true
      | Some d ->
          d >= 0.0 && Guard.atom_holds atom (value +. (rate *. d)))

let prop_conjunction_monotone =
  QCheck.Test.make ~name:"adding atoms only shrinks the guard set" ~count:300
    QCheck.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (x, bound) ->
      let base = [ Guard.atom "x" Guard.Ge (-20.0) ] in
      let narrowed = Guard.atom "x" Guard.Le bound :: base in
      let valuation = v [ ("x", x) ] in
      (not (Guard.holds narrowed valuation)) || Guard.holds base valuation)

let suite =
  [
    ( "hybrid.guard",
      [
        Alcotest.test_case "always" `Quick test_always;
        Alcotest.test_case "atom evaluation" `Quick test_atom_holds;
        Alcotest.test_case "epsilon slack" `Quick test_eps_slack;
        Alcotest.test_case "conjunction" `Quick test_conjunction;
        Alcotest.test_case "missing var is zero" `Quick test_missing_var_is_zero;
        Alcotest.test_case "time_to_satisfy" `Quick test_time_to_satisfy;
        Alcotest.test_case "time_to_violate" `Quick test_time_to_violate;
        Alcotest.test_case "invariant horizon" `Quick test_invariant_horizon;
        QCheck_alcotest.to_alcotest prop_time_to_satisfy_correct;
        QCheck_alcotest.to_alcotest prop_conjunction_monotone;
      ] );
  ]
