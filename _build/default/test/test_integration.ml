(* End-to-end properties across the whole stack. The headline theorem —
   PTE safety under arbitrary loss once c1-c7 hold — is exercised both as
   randomized trials and as targeted message-loss injections at every
   protocol stage. *)

open Pte_core

let params = Params.case_study

let run_trial ?(horizon = 300.0) ?(lease = true) ?(loss = Pte_net.Loss.wifi_interference ~average_loss:0.3)
    ~seed () =
  Pte_tracheotomy.Trial.run
    { Pte_tracheotomy.Emulation.default with horizon; lease; loss; seed }

(* Theorem 1 as a property: any random loss pattern + surgeon schedule
   keeps the with-lease system violation-free. *)
let prop_lease_safe_under_random_loss =
  QCheck.Test.make ~name:"with-lease trials never violate PTE" ~count:20
    QCheck.(make QCheck.Gen.(int_range 1 100_000))
    (fun seed ->
      let r = run_trial ~seed () in
      r.Pte_tracheotomy.Trial.failures = 0)

(* the same trials must also respect the theorem's dwelling bound *)
let prop_dwell_bound_respected =
  QCheck.Test.make ~name:"risky dwelling bounded by T_wait + T_LS1" ~count:15
    QCheck.(make QCheck.Gen.(int_range 1 100_000))
    (fun seed ->
      let r = run_trial ~seed () in
      r.Pte_tracheotomy.Trial.longest_pause
      <= Params.risky_dwell_bound params +. 0.5
      && r.Pte_tracheotomy.Trial.longest_emission
         <= Params.risky_dwell_bound params +. 0.5)

(* Failure injection: kill every instance of one protocol message kind at
   a time. The lease-based design must stay safe in every case. *)
let injection_roots =
  [
    Events.request ~initializer_:"laser";
    Events.lease_req ~participant:"ventilator";
    Events.lease_approve ~participant:"ventilator";
    Events.lease_deny ~participant:"ventilator";
    Events.approve ~initializer_:"laser";
    Events.cancel_up ~initializer_:"laser";
    Events.exit_up ~initializer_:"laser";
    Events.exited_up ~participant:"ventilator";
    Events.cancel_down ~entity:"ventilator";
    Events.cancel_down ~entity:"laser";
    Events.abort_down ~entity:"ventilator";
    Events.abort_down ~entity:"laser";
  ]

let test_single_message_kind_blackouts () =
  List.iter
    (fun root ->
      let loss = Pte_net.Loss.Adversarial (fun _ r -> String.equal r root) in
      let r = run_trial ~seed:21 ~loss () in
      if r.Pte_tracheotomy.Trial.failures <> 0 then
        Alcotest.failf "blackout of %s caused %d failure(s): %a" root
          r.Pte_tracheotomy.Trial.failures
          Fmt.(list ~sep:comma Monitor.pp_violation)
          r.Pte_tracheotomy.Trial.violations)
    injection_roots

let test_total_blackout () =
  (* nothing is ever delivered: the system must stay idle-safe *)
  let r = run_trial ~seed:22 ~loss:(Pte_net.Loss.Bernoulli 1.0) () in
  Alcotest.(check int) "no failures" 0 r.Pte_tracheotomy.Trial.failures;
  Alcotest.(check int) "no emissions" 0 r.Pte_tracheotomy.Trial.emissions

let test_every_kth_packet_lost () =
  List.iter
    (fun k ->
      let loss = Pte_net.Loss.Adversarial (fun nth _ -> nth mod k = 0) in
      let r = run_trial ~seed:23 ~loss () in
      Alcotest.(check int) (Fmt.str "k=%d" k) 0 r.Pte_tracheotomy.Trial.failures)
    [ 2; 3; 5 ]

let test_heavy_random_loss_shape () =
  (* at a heavy loss rate the contrast of Table I appears even in 5
     simulated minutes *)
  let with_lease = run_trial ~seed:31 ~lease:true () in
  let without = run_trial ~seed:31 ~lease:false () in
  Alcotest.(check int) "with lease: safe" 0 with_lease.Pte_tracheotomy.Trial.failures;
  Alcotest.(check bool) "without lease: pause grows" true
    (without.Pte_tracheotomy.Trial.longest_pause
    > with_lease.Pte_tracheotomy.Trial.longest_pause)

let test_trial_determinism () =
  let a = run_trial ~seed:55 () and b = run_trial ~seed:55 () in
  Alcotest.(check int) "emissions" a.Pte_tracheotomy.Trial.emissions
    b.Pte_tracheotomy.Trial.emissions;
  Alcotest.(check int) "failures" a.Pte_tracheotomy.Trial.failures
    b.Pte_tracheotomy.Trial.failures;
  Alcotest.(check int) "messages" a.Pte_tracheotomy.Trial.messages_sent
    b.Pte_tracheotomy.Trial.messages_sent

let test_synthesized_n3_system_runs_safe () =
  (* a three-entity chain from the synthesizer, driven like the case
     study, stays safe under bursty loss *)
  let p3 =
    Synthesis.synthesize_exn
      (Synthesis.default_requirements
         ~entity_names:[ "pump"; "xray"; "carm" ]
         ~safeguards:
           [
             { Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
             { Params.enter_risky_min = 1.0; exit_safe_min = 0.5 };
           ])
  in
  let system = Pattern.system p3 in
  let rng = Pte_util.Rng.create 9 in
  let net =
    Pte_net.Star.create ~base:"supervisor" ~remotes:(Pattern.remotes p3)
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.3)
      ~rng ()
  in
  let config = { Pte_hybrid.Executor.default_config with dt = 0.01 } in
  let engine = Pte_sim.Engine.create ~config ~net ~seed:10 system in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:25.0 ~automaton:"carm"
    ~armed_in:"Fall-Back"
    ~root:(Events.stim_request ~initializer_:"carm") ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:8.0 ~automaton:"carm"
    ~armed_in:"Risky Core"
    ~root:(Events.stim_cancel ~initializer_:"carm") ();
  Pte_sim.Engine.run engine ~until:400.0;
  let spec = Rules.of_params p3 in
  let report =
    Monitor.analyze_system (Pte_sim.Engine.trace engine) system spec
      ~horizon:400.0
  in
  Alcotest.(check int)
    (Fmt.str "%a" Monitor.pp_report report)
    0 (Monitor.episodes report);
  (* the chain actually got exercised *)
  let emissions =
    Pte_sim.Metrics.entries (Pte_sim.Engine.trace engine) ~automaton:"carm"
      ~location:"Risky Core"
  in
  Alcotest.(check bool) "initializer ran" true (emissions >= 1)

let suite =
  [
    ( "integration",
      [
        QCheck_alcotest.to_alcotest prop_lease_safe_under_random_loss;
        QCheck_alcotest.to_alcotest prop_dwell_bound_respected;
        Alcotest.test_case "single-message blackouts" `Slow
          test_single_message_kind_blackouts;
        Alcotest.test_case "total blackout" `Quick test_total_blackout;
        Alcotest.test_case "every k-th packet lost" `Quick
          test_every_kth_packet_lost;
        Alcotest.test_case "heavy loss: lease vs no-lease shape" `Quick
          test_heavy_random_loss_shape;
        Alcotest.test_case "trial determinism" `Quick test_trial_determinism;
        Alcotest.test_case "synthesized N=3 chain safe" `Quick
          test_synthesized_n3_system_runs_safe;
      ] );
  ]
