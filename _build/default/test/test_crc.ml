(* CRC-16/CCITT-FALSE and packet framing. *)

open Pte_net

let test_known_value () =
  (* the standard check value for CRC-16/CCITT-FALSE *)
  Alcotest.(check int) "123456789" 0x29B1 (Crc.of_string "123456789")

let test_empty_string () =
  Alcotest.(check int) "empty = initial" 0xFFFF (Crc.of_string "")

let test_check () =
  let s = "hello world" in
  Alcotest.(check bool) "matches" true (Crc.check ~crc:(Crc.of_string s) s);
  Alcotest.(check bool) "mismatch" false (Crc.check ~crc:(Crc.of_string s) "hello worle")

let prop_detects_single_bit_flip =
  QCheck.Test.make ~name:"crc detects any single bit flip" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 64)) small_nat)
    (fun (s, bit) ->
      let crc = Crc.of_string s in
      let bytes = Bytes.of_string s in
      let i = bit / 8 mod Bytes.length bytes in
      let mask = 1 lsl (bit mod 8) in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor mask));
      let mutated = Bytes.to_string bytes in
      mutated = s || Crc.of_string mutated <> crc)

let prop_crc_deterministic =
  QCheck.Test.make ~name:"crc is a function" ~count:100 QCheck.string (fun s ->
      Crc.of_string s = Crc.of_string s)

let test_packet_intact () =
  let p = Packet.make ~seq:1 ~src:"a" ~dst:"b" ~root:"evt" ~sent_at:1.5 () in
  Alcotest.(check bool) "fresh packet intact" true (Packet.intact p)

let test_packet_corrupt () =
  let p = Packet.make ~seq:2 ~src:"a" ~dst:"b" ~root:"evt" ~sent_at:0.0 () in
  let damaged = Packet.corrupt ~bit:13 p in
  Alcotest.(check bool) "corrupted fails CRC" false (Packet.intact damaged)

let test_packet_size_positive () =
  let p = Packet.make ~seq:0 ~src:"x" ~dst:"y" ~root:"r" ~sent_at:0.0 () in
  Alcotest.(check bool) "frame + trailer" true (Packet.size p > 2)

let suite =
  [
    ( "net.crc+packet",
      [
        Alcotest.test_case "known value" `Quick test_known_value;
        Alcotest.test_case "empty string" `Quick test_empty_string;
        Alcotest.test_case "check" `Quick test_check;
        QCheck_alcotest.to_alcotest prop_detects_single_bit_flip;
        QCheck_alcotest.to_alcotest prop_crc_deterministic;
        Alcotest.test_case "packet intact" `Quick test_packet_intact;
        Alcotest.test_case "packet corrupt" `Quick test_packet_corrupt;
        Alcotest.test_case "packet size" `Quick test_packet_size_positive;
      ] );
  ]
