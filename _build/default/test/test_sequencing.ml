(* Direct validation of the leasing chain's temporal structure on a
   perfect channel, N = 3: risky entries happen in PTE order with the
   required spacing, exits in exactly reverse order with the exit
   safeguards — both for a surgeon-cancelled session and for a session
   that ends purely by lease expiry. *)

open Pte_core
open Pte_hybrid

let sg_enter = [ 2.0; 1.5 ]
let sg_exit = [ 1.0; 0.8 ]

let params =
  Synthesis.synthesize_exn
    (Synthesis.default_requirements ~entity_names:[ "e1"; "e2"; "e3" ]
       ~safeguards:
         (List.map2
            (fun enter exit -> { Params.enter_risky_min = enter; exit_safe_min = exit })
            sg_enter sg_exit))

let run ~cancel_after =
  let system = Pattern.system params in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Executor.default_config with dt = 0.005 }
      ~seed:1 system
  in
  let request_at = params.Params.t_fb_min +. 1.0 in
  Pte_sim.Scenario.one_shot engine ~at:request_at ~automaton:"e3"
    ~armed_in:"Fall-Back"
    ~root:(Events.stim_request ~initializer_:"e3");
  (match cancel_after with
  | Some delay ->
      Pte_sim.Scenario.one_shot engine ~at:(request_at +. delay) ~automaton:"e3"
        ~armed_in:"Risky Core"
        ~root:(Events.stim_cancel ~initializer_:"e3")
  | None -> ());
  let horizon = 120.0 in
  Pte_sim.Engine.run engine ~until:horizon;
  let trace = Pte_sim.Engine.trace engine in
  let spec = Rules.of_params params in
  let report = Monitor.analyze_system trace system spec ~horizon in
  Alcotest.(check int)
    (Fmt.str "%a" Monitor.pp_report report)
    0 (Monitor.episodes report);
  List.map
    (fun entity ->
      match List.assoc_opt entity report.Monitor.intervals with
      | Some [ span ] -> span
      | Some spans ->
          Alcotest.failf "%s: expected one risky span, got %d" entity
            (List.length spans)
      | None -> Alcotest.failf "%s: no intervals" entity)
    [ "e1"; "e2"; "e3" ]

let check_nesting spans =
  match spans with
  | [ (a1, b1); (a2, b2); (a3, b3) ] ->
      (* entries in PTE order with enter safeguards *)
      Alcotest.(check bool)
        (Fmt.str "e2 enters %.2fs after e1 (need %.1f)" (a2 -. a1)
           (List.nth sg_enter 0))
        true
        (a2 -. a1 >= List.nth sg_enter 0 -. 0.01);
      Alcotest.(check bool)
        (Fmt.str "e3 enters %.2fs after e2 (need %.1f)" (a3 -. a2)
           (List.nth sg_enter 1))
        true
        (a3 -. a2 >= List.nth sg_enter 1 -. 0.01);
      (* exits in reverse order with exit safeguards *)
      Alcotest.(check bool)
        (Fmt.str "e2 outlasts e3 by %.2fs (need %.1f)" (b2 -. b3)
           (List.nth sg_exit 1))
        true
        (b2 -. b3 >= List.nth sg_exit 1 -. 0.01);
      Alcotest.(check bool)
        (Fmt.str "e1 outlasts e2 by %.2fs (need %.1f)" (b1 -. b2)
           (List.nth sg_exit 0))
        true
        (b1 -. b2 >= List.nth sg_exit 0 -. 0.01)
  | _ -> Alcotest.fail "expected three spans"

let test_cancelled_session () = check_nesting (run ~cancel_after:(Some 12.0))
let test_lease_expiry_session () = check_nesting (run ~cancel_after:None)

let test_dwell_bounds () =
  let spans = run ~cancel_after:None in
  let bound = Params.risky_dwell_bound params in
  List.iteri
    (fun i (a, b) ->
      if b -. a > bound then
        Alcotest.failf "e%d dwelt %.1fs > bound %.1fs" (i + 1) (b -. a) bound)
    spans

let suite =
  [
    ( "core.sequencing",
      [
        Alcotest.test_case "N=3 nesting, surgeon cancels" `Quick
          test_cancelled_session;
        Alcotest.test_case "N=3 nesting, pure lease expiry" `Quick
          test_lease_expiry_session;
        Alcotest.test_case "N=3 dwell bounds" `Quick test_dwell_bounds;
      ] );
  ]
