(* Descriptive statistics used by trial reports. *)

open Pte_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_mean () =
  Alcotest.(check bool) "mean" true (feq (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_variance_stddev () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* sample variance of this classic set is 32/7 *)
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-9 (Stats.variance xs) (32.0 /. 7.0));
  Alcotest.(check bool) "stddev" true
    (feq ~eps:1e-9 (Stats.stddev xs) (sqrt (32.0 /. 7.0)));
  Alcotest.(check bool) "singleton variance" true (feq (Stats.variance [ 5.0 ]) 0.0)

let test_min_max_sum () =
  let xs = [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check bool) "min" true (feq (Stats.minimum xs) (-1.0));
  Alcotest.(check bool) "max" true (feq (Stats.maximum xs) 7.0);
  Alcotest.(check bool) "sum" true (feq (Stats.sum xs) 9.0)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile xs 0.0) 1.0);
  Alcotest.(check bool) "p50" true (feq (Stats.percentile xs 50.0) 3.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile xs 100.0) 5.0);
  Alcotest.(check bool) "p25" true (feq (Stats.percentile xs 25.0) 2.0)

let test_online_matches_batch () =
  let xs = List.init 100 (fun i -> sin (Float.of_int i) *. 10.0) in
  let online = Stats.Online.create () in
  List.iter (Stats.Online.add online) xs;
  Alcotest.(check int) "count" 100 (Stats.Online.count online);
  Alcotest.(check bool) "mean" true
    (feq ~eps:1e-9 (Stats.Online.mean online) (Stats.mean xs));
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-6 (Stats.Online.variance online) (Stats.variance xs));
  Alcotest.(check bool) "min" true
    (feq (Stats.Online.min online) (Stats.minimum xs));
  Alcotest.(check bool) "max" true
    (feq (Stats.Online.max online) (Stats.maximum xs))

let prop_online_mean =
  QCheck.Test.make ~name:"online mean = batch mean" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let online = Stats.Online.create () in
      List.iter (Stats.Online.add online) xs;
      Float.abs (Stats.Online.mean online -. Stats.mean xs) < 1e-6)

let suite =
  [
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
        Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "online = batch" `Quick test_online_matches_batch;
        QCheck_alcotest.to_alcotest prop_online_mean;
      ] );
  ]
