  $ ../../bin/pte_check.exe | tail -7
  $ ../../bin/pte_check.exe --t-enter-2 3 > /dev/null 2>&1
  $ ../../bin/pte_dot.exe ventilator-standalone | head -3
  $ ../../bin/pte_dot.exe nonsense
