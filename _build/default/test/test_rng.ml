(* SplitMix64 PRNG: determinism, stream independence, distribution
   sanity. Reproducible trials depend on these properties. *)

open Pte_util

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 16 (fun _ -> Rng.float a) in
  let ys = List.init 16 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different seeds differ" false (xs = ys)

let test_copy_forks_state () =
  let a = Rng.create 7 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  Alcotest.(check (float 0.0)) "copy continues identically" (Rng.float a)
    (Rng.float b)

let test_split_independent () =
  let parent = Rng.create 99 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let xs = List.init 16 (fun _ -> Rng.float child1) in
  let ys = List.init 16 (fun _ -> Rng.float child2) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %g" x
  done

let test_float_mean () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. Float.of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then
    Alcotest.failf "uniform mean drifted: %g" mean

let test_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_bernoulli_rate () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = Float.of_int !hits /. Float.of_int n in
  if Float.abs (rate -. 0.3) > 0.01 then
    Alcotest.failf "bernoulli rate drifted: %g" rate

let test_exponential_mean () =
  (* the distribution behind the surgeon's Ton/Toff timers *)
  let rng = Rng.create 17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:18.0
  done;
  let mean = !sum /. Float.of_int n in
  if Float.abs (mean -. 18.0) > 0.5 then
    Alcotest.failf "exponential mean drifted: %g" mean

let test_exponential_positive () =
  let rng = Rng.create 19 in
  for _ = 1 to 10_000 do
    let x = Rng.exponential rng ~mean:1.0 in
    if x < 0.0 || not (Float.is_finite x) then
      Alcotest.failf "exponential out of range: %g" x
  done

let test_exponential_tail () =
  (* P(X > mean) should be about e^-1 ~ 0.368 *)
  let rng = Rng.create 23 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.exponential rng ~mean:6.0 > 6.0 then incr hits
  done;
  let rate = Float.of_int !hits /. Float.of_int n in
  if Float.abs (rate -. exp (-1.0)) > 0.02 then
    Alcotest.failf "exponential tail drifted: %g" rate

let test_uniform_range () =
  let rng = Rng.create 29 in
  for _ = 1 to 10_000 do
    let x = Rng.uniform rng ~lo:(-2.0) ~hi:3.0 in
    if x < -2.0 || x >= 3.0 then Alcotest.failf "uniform out of range: %g" x
  done

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy forks state" `Quick test_copy_forks_state;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "float in [0,1)" `Quick test_float_range;
        Alcotest.test_case "float mean" `Quick test_float_mean;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
        Alcotest.test_case "exponential tail" `Quick test_exponential_tail;
        Alcotest.test_case "uniform range" `Quick test_uniform_range;
      ] );
  ]
