(* Event-queue heap: ordering, FIFO tie-breaking, growth, pop_until. *)

open Pte_util

let test_empty () =
  let h = Heap.create ~dummy:"" in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None)

let test_ordering () =
  let h = Heap.create ~dummy:"" in
  List.iter (fun (p, v) -> Heap.push h p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "priority order" [ "z"; "a"; "b"; "c" ] order

let test_fifo_ties () =
  let h = Heap.create ~dummy:"" in
  List.iter (fun v -> Heap.push h 1.0 v) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string))
    "insertion order on equal priority"
    [ "first"; "second"; "third" ] order

let test_growth () =
  let h = Heap.create ~dummy:0 in
  for i = 1000 downto 1 do
    Heap.push h (Float.of_int i) i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  let prev = ref 0 in
  for _ = 1 to 1000 do
    let _, v = Option.get (Heap.pop h) in
    if v <= !prev then Alcotest.failf "out of order: %d after %d" v !prev;
    prev := v
  done

let test_pop_until () =
  let h = Heap.create ~dummy:"" in
  List.iter (fun (p, v) -> Heap.push h p v)
    [ (1.0, "a"); (2.0, "b"); (3.0, "c"); (4.0, "d") ];
  let due = Heap.pop_until h ~upto:2.5 in
  Alcotest.(check (list string)) "due items" [ "a"; "b" ] (List.map snd due);
  Alcotest.(check int) "remaining" 2 (Heap.length h)

let test_clear () =
  let h = Heap.create ~dummy:"" in
  Heap.push h 1.0 "a";
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let h = Heap.create ~dummy:0.0 in
      List.iter (fun p -> Heap.push h p p) priorities;
      let popped = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some (_, v) ->
            popped := v :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !popped = List.sort Float.compare priorities)

let suite =
  [
    ( "util.heap",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
        Alcotest.test_case "growth + 1000 elements" `Quick test_growth;
        Alcotest.test_case "pop_until" `Quick test_pop_until;
        Alcotest.test_case "clear" `Quick test_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
      ] );
  ]
