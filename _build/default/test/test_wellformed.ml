(* Static time-block-freedom / non-zeno checks (the paper's footnote-3
   assumptions, mechanized conservatively). *)

open Pte_hybrid

let params = Pte_core.Params.case_study

let test_pattern_automata_clean () =
  List.iter
    (fun (a : Automaton.t) ->
      match Wellformed.check a with
      | [] -> ()
      | issues ->
          Alcotest.failf "%s: %a" a.Automaton.name
            Fmt.(list ~sep:(any "; ") Wellformed.pp_issue)
            issues)
    [
      Pte_core.Pattern.supervisor params;
      Pte_core.Pattern.initializer_ params;
      Pte_core.Pattern.participant params ~index:1;
      Pte_tracheotomy.Ventilator.stand_alone;
      Pte_tracheotomy.Ventilator.participant params;
      Pte_tracheotomy.Patient.automaton;
    ]

let test_detects_time_block () =
  let trap =
    Automaton.make ~name:"trap" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ])
            ~invariant:[ Guard.atom "c" Guard.Le 1.0 ] "Trap" ]
      ~edges:[] ~initial_location:"Trap" ()
  in
  match Wellformed.check trap with
  | [ Wellformed.Possible_time_block { location = "Trap"; _ } ] -> ()
  | issues ->
      Alcotest.failf "expected one time-block, got %a"
        Fmt.(list ~sep:comma Wellformed.pp_issue)
        issues

let test_egress_at_boundary_clears () =
  (* same trap, but with an egress enabled exactly at the boundary *)
  let ok =
    Automaton.make ~name:"ok" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ])
            ~invariant:[ Guard.atom "c" Guard.Le 1.0 ] "Hold";
          Location.make ~flow:(Flow.clocks [ "c" ]) "Out" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "c" Guard.Ge 1.0 ]
            ~reset:(Reset.set "c" 0.0) ~src:"Hold" ~dst:"Out" () ]
      ~initial_location:"Hold" ()
  in
  Alcotest.(check int) "clean" 0 (List.length (Wellformed.check ok))

let test_guard_above_invariant_flagged () =
  (* egress guard c >= 2 can never enable inside invariant c <= 1 *)
  let bad =
    Automaton.make ~name:"bad" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ])
            ~invariant:[ Guard.atom "c" Guard.Le 1.0 ] "Hold";
          Location.make ~flow:(Flow.clocks [ "c" ]) "Out" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "c" Guard.Ge 2.0 ] ~src:"Hold"
            ~dst:"Out" () ]
      ~initial_location:"Hold" ()
  in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (function Wellformed.Possible_time_block _ -> true | _ -> false)
       (Wellformed.check bad))

let test_detects_zeno_cycle () =
  let spin =
    Automaton.make ~name:"spin" ~vars:[]
      ~locations:[ Location.make "A"; Location.make "B" ]
      ~edges:[ Edge.make ~src:"A" ~dst:"B" (); Edge.make ~src:"B" ~dst:"A" () ]
      ~initial_location:"A" ()
  in
  Alcotest.(check bool) "flagged" true
    (List.exists
       (function Wellformed.Possible_zeno_cycle _ -> true | _ -> false)
       (Wellformed.check spin))

let test_timed_cycle_not_flagged () =
  let tick =
    Automaton.make ~name:"tick" ~vars:[ "c" ]
      ~locations:
        [ Location.make ~flow:(Flow.clocks [ "c" ]) "A";
          Location.make ~flow:(Flow.clocks [ "c" ]) "B" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "c" Guard.Ge 1.0 ]
            ~reset:(Reset.set "c" 0.0) ~src:"A" ~dst:"B" ();
          Edge.make ~guard:[ Guard.atom "c" Guard.Ge 1.0 ]
            ~reset:(Reset.set "c" 0.0) ~src:"B" ~dst:"A" () ]
      ~initial_location:"A" ()
  in
  Alcotest.(check bool) "no zeno" true
    (not
       (List.exists
          (function Wellformed.Possible_zeno_cycle _ -> true | _ -> false)
          (Wellformed.check tick)))

let test_triggered_cycles_excluded () =
  (* a request/response loop driven by external events is not zeno *)
  let ping =
    Automaton.make ~name:"ping" ~vars:[]
      ~locations:[ Location.make "A"; Location.make "B" ]
      ~edges:
        [ Edge.make ~label:(Label.Recv "go") ~src:"A" ~dst:"B" ();
          Edge.make ~label:(Label.Recv "back") ~src:"B" ~dst:"A" () ]
      ~initial_location:"A" ()
  in
  Alcotest.(check int) "clean" 0 (List.length (Wellformed.check ping))

let suite =
  [
    ( "hybrid.wellformed",
      [
        Alcotest.test_case "pattern automata clean" `Quick
          test_pattern_automata_clean;
        Alcotest.test_case "detects time-block" `Quick test_detects_time_block;
        Alcotest.test_case "boundary egress clears" `Quick
          test_egress_at_boundary_clears;
        Alcotest.test_case "unreachable guard flagged" `Quick
          test_guard_above_invariant_flagged;
        Alcotest.test_case "detects zeno cycle" `Quick test_detects_zeno_cycle;
        Alcotest.test_case "timed cycle ok" `Quick test_timed_cycle_not_flagged;
        Alcotest.test_case "triggered cycles excluded" `Quick
          test_triggered_cycles_excluded;
      ] );
  ]
