(* Simulation engine: processes, stimuli, wired sensors, couplings. *)

open Pte_hybrid

let listener_automaton =
  Automaton.make ~name:"listener" ~vars:[ "x" ]
    ~locations:[ Location.make "Idle"; Location.make "Active" ]
    ~edges:
      [
        Edge.make ~label:(Label.Recv "go") ~src:"Idle" ~dst:"Active" ();
        Edge.make ~label:(Label.Recv "stop") ~src:"Active" ~dst:"Idle" ();
      ]
    ~initial_location:"Idle" ()

let mk_engine ?(automata = [ listener_automaton ]) () =
  Pte_sim.Engine.create ~seed:7 (System.make ~name:"t" automata)

let test_run_advances_time () =
  let engine = mk_engine () in
  Pte_sim.Engine.run engine ~until:2.5;
  Alcotest.(check bool) "time ~2.5" true
    (Float.abs (Pte_sim.Engine.time engine -. 2.5) < 0.01)

let test_process_period () =
  let engine = mk_engine () in
  let fired = ref 0 in
  Pte_sim.Engine.add_process engine ~period:0.5 ~name:"probe"
    (fun _ ~time:_ -> incr fired);
  Pte_sim.Engine.run engine ~until:2.0;
  (* fires at 0.0, 0.5, 1.0, 1.5, 2.0 *)
  Alcotest.(check bool) "about 5 firings" true (!fired >= 4 && !fired <= 6)

let test_inject () =
  let engine = mk_engine () in
  Pte_sim.Engine.inject engine ~receiver:"listener" ~root:"go";
  Alcotest.(check string) "moved" "Active"
    (Pte_sim.Engine.location_of engine "listener")

let test_one_shot () =
  let engine = mk_engine () in
  Pte_sim.Scenario.one_shot engine ~at:1.0 ~automaton:"listener" ~armed_in:"Idle"
    ~root:"go";
  Pte_sim.Engine.run engine ~until:0.9;
  Alcotest.(check string) "not yet" "Idle"
    (Pte_sim.Engine.location_of engine "listener");
  Pte_sim.Engine.run engine ~until:1.2;
  Alcotest.(check string) "fired once" "Active"
    (Pte_sim.Engine.location_of engine "listener")

let test_exponential_stimulus_rearms () =
  (* with a tiny mean the stimulus keeps firing each time the automaton
     returns to the armed location *)
  let engine = mk_engine () in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:0.05 ~automaton:"listener"
    ~armed_in:"Idle" ~root:"go" ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:0.05 ~automaton:"listener"
    ~armed_in:"Active" ~root:"stop" ();
  Pte_sim.Engine.run engine ~until:10.0;
  let flips =
    Pte_sim.Metrics.entries (Pte_sim.Engine.trace engine) ~automaton:"listener"
      ~location:"Active"
  in
  Alcotest.(check bool) "many cycles" true (flips > 10)

let test_stimulus_only_in_armed_location () =
  let engine = mk_engine () in
  (* armed in Active, but the automaton stays Idle: never fires *)
  Pte_sim.Scenario.exponential_stimulus engine ~mean:0.01 ~automaton:"listener"
    ~armed_in:"Active" ~root:"stop" ();
  Pte_sim.Engine.run engine ~until:2.0;
  Alcotest.(check string) "untouched" "Idle"
    (Pte_sim.Engine.location_of engine "listener")

let two_plants () =
  let plant name =
    Automaton.make ~name ~vars:[ "level"; "mirror" ]
      ~locations:
        [ Location.make ~flow:(Flow.Rates [ ("level", 1.0) ]) "Run" ]
      ~edges:[] ~initial_location:"Run" ()
  in
  (plant "source", plant "sink")

let test_wired_sensor () =
  let src, dst = two_plants () in
  let engine = mk_engine ~automata:[ src; dst ] () in
  Pte_sim.Scenario.wired_sensor engine ~period:0.25
    ~from:("source", "level") ~to_:("sink", "mirror") ();
  Pte_sim.Engine.run engine ~until:2.0;
  let copied = Pte_sim.Engine.value_of engine "sink" "mirror" in
  let actual = Pte_sim.Engine.value_of engine "source" "level" in
  Alcotest.(check bool)
    (Fmt.str "mirror %.3f tracks level %.3f" copied actual)
    true
    (Float.abs (copied -. actual) <= 0.3)

let test_wired_sensor_transform () =
  let src, dst = two_plants () in
  let engine = mk_engine ~automata:[ src; dst ] () in
  Pte_sim.Scenario.wired_sensor engine ~period:0.1 ~from:("source", "level")
    ~to_:("sink", "mirror")
    ~transform:(fun _rng v -> if v > 1.0 then 1.0 else 0.0)
    ();
  Pte_sim.Engine.run engine ~until:0.5;
  Alcotest.(check (float 0.0)) "below threshold" 0.0
    (Pte_sim.Engine.value_of engine "sink" "mirror");
  Pte_sim.Engine.run engine ~until:1.5;
  Alcotest.(check (float 0.0)) "above threshold" 1.0
    (Pte_sim.Engine.value_of engine "sink" "mirror")

let test_coupling_every_step () =
  let src, dst = two_plants () in
  let engine = mk_engine ~automata:[ src; dst ] () in
  Pte_sim.Scenario.coupling engine ~automaton:"sink" ~var:"mirror" (fun engine ->
      2.0 *. Pte_sim.Engine.value_of engine "source" "level");
  Pte_sim.Engine.run engine ~until:1.0;
  let mirror = Pte_sim.Engine.value_of engine "sink" "mirror" in
  Alcotest.(check bool) "doubled" true (Float.abs (mirror -. 2.0) < 0.05)

let test_fork_rng_deterministic () =
  let e1 = mk_engine () and e2 = mk_engine () in
  let r1 = Pte_sim.Engine.fork_rng e1 and r2 = Pte_sim.Engine.fork_rng e2 in
  Alcotest.(check (float 0.0)) "same seed, same fork" (Pte_util.Rng.float r1)
    (Pte_util.Rng.float r2)

let test_metrics_series () =
  let src, _ = two_plants () in
  let config =
    { Executor.default_config with
      sample_vars = [ ("source", "level") ];
      sample_period = 0.5 }
  in
  let engine =
    Pte_sim.Engine.create ~config ~seed:1 (System.make ~name:"t" [ src ])
  in
  Pte_sim.Engine.run engine ~until:2.0;
  let series =
    Pte_sim.Metrics.series (Pte_sim.Engine.trace engine) ~automaton:"source"
      ~var:"level"
  in
  Alcotest.(check bool) "several samples" true (List.length series >= 4);
  List.iter
    (fun (t, v) ->
      if Float.abs (v -. t) > 0.02 then
        Alcotest.failf "sample (%g, %g) off the level=t line" t v)
    series

let suite =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "run advances time" `Quick test_run_advances_time;
        Alcotest.test_case "process period" `Quick test_process_period;
        Alcotest.test_case "inject" `Quick test_inject;
        Alcotest.test_case "one-shot stimulus" `Quick test_one_shot;
        Alcotest.test_case "exponential stimulus re-arms" `Quick
          test_exponential_stimulus_rearms;
        Alcotest.test_case "stimulus gated by location" `Quick
          test_stimulus_only_in_armed_location;
        Alcotest.test_case "wired sensor" `Quick test_wired_sensor;
        Alcotest.test_case "sensor transform" `Quick test_wired_sensor_transform;
        Alcotest.test_case "per-step coupling" `Quick test_coupling_every_step;
        Alcotest.test_case "fork rng deterministic" `Quick
          test_fork_rng_deterministic;
        Alcotest.test_case "sample series" `Quick test_metrics_series;
      ] );
  ]
