(* Constructive parameter synthesis: everything it produces must satisfy
   Theorem 1, across chain lengths and safeguard profiles. *)

open Pte_core

let names n = List.init n (fun i -> Printf.sprintf "xi%d" (i + 1))

let safeguards n values =
  List.init (n - 1) (fun i ->
      let enter, exit = List.nth values (i mod List.length values) in
      { Params.enter_risky_min = enter; exit_safe_min = exit })

let test_n2_defaults () =
  let r =
    Synthesis.default_requirements ~entity_names:(names 2)
      ~safeguards:(safeguards 2 [ (3.0, 1.5) ])
  in
  let p = Synthesis.synthesize_exn r in
  Alcotest.(check bool) "satisfies c1-c7" true (Constraints.satisfies p);
  Alcotest.(check int) "N" 2 (Params.n p)

let test_long_chains () =
  List.iter
    (fun n ->
      let r =
        Synthesis.default_requirements ~entity_names:(names n)
          ~safeguards:(safeguards n [ (2.0, 1.0); (4.0, 0.5); (1.0, 2.0) ])
      in
      match Synthesis.synthesize r with
      | Ok p ->
          if not (Constraints.satisfies p) then
            Alcotest.failf "N=%d: synthesized constants violate Theorem 1" n
      | Error e -> Alcotest.failf "N=%d: %a" n Synthesis.pp_error e)
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_rejects_n1 () =
  let r = Synthesis.default_requirements ~entity_names:[ "solo" ] ~safeguards:[] in
  match Synthesis.synthesize r with
  | Error (Synthesis.Too_few_entities 1) -> ()
  | _ -> Alcotest.fail "expected Too_few_entities"

let test_rejects_safeguard_mismatch () =
  let r = Synthesis.default_requirements ~entity_names:(names 3) ~safeguards:[] in
  match Synthesis.synthesize r with
  | Error (Synthesis.Bad_safeguard_count { expected = 2; got = 0 }) -> ()
  | _ -> Alcotest.fail "expected Bad_safeguard_count"

let test_rejects_nonpositive () =
  let r =
    {
      (Synthesis.default_requirements ~entity_names:(names 2)
         ~safeguards:(safeguards 2 [ (1.0, 1.0) ]))
      with
      Synthesis.initializer_run = 0.0;
    }
  in
  match Synthesis.synthesize r with
  | Error (Synthesis.Nonpositive _) -> ()
  | _ -> Alcotest.fail "expected Nonpositive"

let test_case_study_like_requirements () =
  (* requirements mirroring the paper's case study should give a valid,
     comparable configuration *)
  let r =
    {
      (Synthesis.default_requirements
         ~entity_names:[ "ventilator"; "laser" ]
         ~safeguards:[ { Params.enter_risky_min = 3.0; exit_safe_min = 1.5 } ])
      with
      Synthesis.initializer_run = 20.0;
      t_wait_max = 3.0;
    }
  in
  let p = Synthesis.synthesize_exn r in
  Alcotest.(check bool) "valid" true (Constraints.satisfies p);
  let laser = Params.initializer_ p in
  Alcotest.(check (float 1e-9)) "requested run time honoured" 20.0
    laser.Params.t_run_max

let prop_synthesis_sound =
  (* random requirements: synthesis either refuses with a typed error or
     produces constants satisfying all of c1-c7 *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 6 in
      let* run = float_range 1.0 60.0 in
      let* wait = float_range 0.5 5.0 in
      let* margin = float_range 0.1 3.0 in
      let* sg =
        list_repeat (n - 1)
          (pair (float_range 0.1 6.0) (float_range 0.1 6.0))
      in
      return (n, run, wait, margin, sg))
  in
  QCheck.Test.make ~name:"synthesized params satisfy Theorem 1" ~count:300
    (QCheck.make gen) (fun (n, run, wait, margin, sg) ->
      let r =
        {
          Synthesis.supervisor = "s";
          entity_names = names n;
          safeguards =
            List.map
              (fun (enter, exit) ->
                { Params.enter_risky_min = enter; exit_safe_min = exit })
              sg;
          initializer_run = run;
          t_wait_max = wait;
          margin;
        }
      in
      match Synthesis.synthesize r with
      | Ok p -> Constraints.satisfies p
      | Error (Synthesis.Infeasible _) -> true
      | Error _ -> false)

let suite =
  [
    ( "core.synthesis",
      [
        Alcotest.test_case "N=2 defaults" `Quick test_n2_defaults;
        Alcotest.test_case "chains up to N=8" `Quick test_long_chains;
        Alcotest.test_case "rejects N=1" `Quick test_rejects_n1;
        Alcotest.test_case "rejects safeguard mismatch" `Quick
          test_rejects_safeguard_mismatch;
        Alcotest.test_case "rejects nonpositive" `Quick test_rejects_nonpositive;
        Alcotest.test_case "case-study-like requirements" `Quick
          test_case_study_like_requirements;
        QCheck_alcotest.to_alcotest prop_synthesis_sound;
      ] );
  ]
