(* Trace recording and risky-interval extraction — the primitive under
   the PTE monitor. *)

open Pte_hybrid

let transition ~time automaton src dst =
  {
    Trace.time;
    event = Trace.Transition { automaton; src; dst; label = None; forced = false };
  }

let risky_locations = [ "R1"; "R2" ]
let member location = List.mem location risky_locations

let test_recorder () =
  let r = Trace.Recorder.create () in
  Trace.Recorder.record r ~time:1.0 (Trace.Note "one");
  Trace.Recorder.record r ~time:2.0 (Trace.Note "two");
  Alcotest.(check int) "length" 2 (Trace.Recorder.length r);
  match Trace.Recorder.entries r with
  | [ { Trace.time = 1.0; _ }; { Trace.time = 2.0; _ } ] -> ()
  | _ -> Alcotest.fail "entries out of order"

let test_recorder_sink () =
  let seen = ref 0 in
  let r = Trace.Recorder.create ~sink:(fun _ -> incr seen) () in
  Trace.Recorder.record r ~time:0.0 (Trace.Note "x");
  Alcotest.(check int) "sink called" 1 !seen

let check_intervals name expected actual =
  let pp = Fmt.(list ~sep:comma (pair ~sep:(any "..") float float)) in
  if
    List.length expected <> List.length actual
    || not
         (List.for_all2
            (fun (a, b) (c, d) -> Float.abs (a -. c) < 1e-9 && Float.abs (b -. d) < 1e-9)
            expected actual)
  then Alcotest.failf "%s: expected %a, got %a" name pp expected pp actual

let test_single_interval () =
  let trace =
    [ transition ~time:5.0 "e" "Safe" "R1"; transition ~time:9.0 "e" "R1" "Safe" ]
  in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"Safe" ~horizon:20.0
  in
  check_intervals "one dwell" [ (5.0, 9.0) ] intervals

let test_interval_across_risky_locations () =
  (* R1 -> R2 is continuous dwelling in the risky set *)
  let trace =
    [
      transition ~time:2.0 "e" "Safe" "R1";
      transition ~time:4.0 "e" "R1" "R2";
      transition ~time:7.0 "e" "R2" "Safe";
    ]
  in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"Safe" ~horizon:10.0
  in
  check_intervals "merged dwell" [ (2.0, 7.0) ] intervals

let test_open_interval_at_horizon () =
  let trace = [ transition ~time:3.0 "e" "Safe" "R1" ] in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"Safe" ~horizon:10.0
  in
  check_intervals "truncated" [ (3.0, 10.0) ] intervals

let test_initial_in_member () =
  let trace = [ transition ~time:4.0 "e" "R1" "Safe" ] in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"R1" ~horizon:10.0
  in
  check_intervals "starts at 0" [ (0.0, 4.0) ] intervals

let test_other_automata_ignored () =
  let trace =
    [
      transition ~time:1.0 "other" "Safe" "R1";
      transition ~time:2.0 "e" "Safe" "R1";
      transition ~time:3.0 "e" "R1" "Safe";
    ]
  in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"Safe" ~horizon:10.0
  in
  check_intervals "only e" [ (2.0, 3.0) ] intervals

let test_multiple_intervals () =
  let trace =
    [
      transition ~time:1.0 "e" "Safe" "R1";
      transition ~time:2.0 "e" "R1" "Safe";
      transition ~time:5.0 "e" "Safe" "R2";
      transition ~time:6.5 "e" "R2" "Safe";
    ]
  in
  let intervals =
    Trace.intervals trace ~automaton:"e" ~member ~initial:"Safe" ~horizon:10.0
  in
  check_intervals "two dwells" [ (1.0, 2.0); (5.0, 6.5) ] intervals

let test_longest_dwell () =
  Alcotest.(check (float 1e-9)) "longest" 4.0
    (Trace.longest_dwell [ (0.0, 1.0); (2.0, 6.0); (7.0, 8.0) ])

let suite =
  [
    ( "hybrid.trace",
      [
        Alcotest.test_case "recorder" `Quick test_recorder;
        Alcotest.test_case "recorder sink" `Quick test_recorder_sink;
        Alcotest.test_case "single interval" `Quick test_single_interval;
        Alcotest.test_case "across risky locations" `Quick
          test_interval_across_risky_locations;
        Alcotest.test_case "open at horizon" `Quick test_open_interval_at_horizon;
        Alcotest.test_case "initial in member" `Quick test_initial_in_member;
        Alcotest.test_case "other automata ignored" `Quick
          test_other_automata_ignored;
        Alcotest.test_case "multiple intervals" `Quick test_multiple_intervals;
        Alcotest.test_case "longest dwell" `Quick test_longest_dwell;
      ] );
  ]
