(* Theorem 2 compliance: building designs by elaboration with all
   premises checked. *)

open Pte_core
open Pte_hybrid

let p = Params.case_study

let vent_child = Pte_tracheotomy.Ventilator.stand_alone

let plan =
  {
    Compliance.params = p;
    lease = true;
    children = [ ("ventilator", [ ("Fall-Back", vent_child) ]) ];
  }

let test_build_ok () =
  match Compliance.build plan with
  | Ok system ->
      Alcotest.(check int) "members" 3 (List.length system.System.automata);
      let vent = System.find_exn system "ventilator" in
      Alcotest.(check bool) "elaborated" true
        (List.mem "PumpOut" (Automaton.location_names vent))
  | Error errs ->
      Alcotest.failf "build failed: %a"
        Fmt.(list ~sep:(any "; ") Compliance.pp_error)
        errs

let test_build_rejects_bad_constants () =
  let bad_params =
    { p with Params.t_req_max = 100.0 (* violates c3 *) }
  in
  match Compliance.build { plan with Compliance.params = bad_params } with
  | Error errs ->
      Alcotest.(check bool) "mentions constraints" true
        (List.exists
           (function Compliance.Constraints_violated _ -> true | _ -> false)
           errs)
  | Ok _ -> Alcotest.fail "expected constraint rejection"

let test_build_rejects_unknown_member () =
  match
    Compliance.build
      { plan with Compliance.children = [ ("ghost", [ ("Fall-Back", vent_child) ]) ] }
  with
  | Error errs ->
      Alcotest.(check bool) "unknown member" true
        (List.exists
           (function Compliance.Unknown_member "ghost" -> true | _ -> false)
           errs)
  | Ok _ -> Alcotest.fail "expected rejection"

let test_build_rejects_non_simple_child () =
  let not_simple =
    Automaton.make ~name:"ns" ~vars:[ "q" ]
      ~locations:
        [ Location.make ~invariant:[ Guard.atom "q" Guard.Le 1.0 ] "Q1";
          Location.make "Q2" ]
      ~edges:[] ~initial_location:"Q1" ()
  in
  match
    Compliance.build
      { plan with Compliance.children = [ ("ventilator", [ ("Fall-Back", not_simple) ]) ] }
  with
  | Error errs ->
      Alcotest.(check bool) "elaboration failure" true
        (List.exists
           (function Compliance.Elaboration_failed _ -> true | _ -> false)
           errs)
  | Ok _ -> Alcotest.fail "expected rejection"

let test_build_rejects_dependent_children () =
  (* two children sharing a variable are not mutually independent
     (Theorem 2, premise 4) *)
  let child name =
    Automaton.make ~name ~vars:[ "shared" ]
      ~locations:[ Location.make (name ^ "-L") ]
      ~edges:[] ~initial_location:(name ^ "-L") ()
  in
  match
    Compliance.build
      {
        plan with
        Compliance.children =
          [
            ("ventilator", [ ("Fall-Back", child "k1") ]);
            ("laser", [ ("Fall-Back", child "k2") ]);
          ];
      }
  with
  | Error errs ->
      Alcotest.(check bool) "mutual independence" true
        (List.exists
           (function
             | Compliance.Children_not_mutually_independent _ -> true
             | _ -> false)
           errs)
  | Ok _ -> Alcotest.fail "expected rejection"

let test_audit_accepts_built_design () =
  let design = Compliance.build_exn plan in
  match Compliance.audit plan ~design with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "audit failed: %a"
        Fmt.(list ~sep:(any "; ") Compliance.pp_error)
        errs

let test_audit_rejects_mangled_design () =
  let design = Compliance.build_exn plan in
  (* drop the supervisor's variables: the pattern audit must fail *)
  let mangled =
    System.make ~name:"mangled"
      (List.map
         (fun (a : Automaton.t) ->
           if a.Automaton.name = "supervisor" then { a with Automaton.vars = [] }
           else a)
         design.System.automata)
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Compliance.audit plan ~design:mangled))

let test_built_design_runs () =
  (* the compliant design is executable and stays in safe locations while
     nothing requests a lease *)
  let design = Compliance.build_exn plan in
  let exec = Executor.create (System.make ~name:"d" design.System.automata) in
  Executor.run exec ~until:10.0;
  Alcotest.(check string) "laser idle" "Fall-Back" (Executor.location_of exec "laser");
  Alcotest.(check bool) "ventilator pumping" true
    (List.mem (Executor.location_of exec "ventilator") [ "PumpOut"; "PumpIn" ])

let suite =
  [
    ( "core.compliance",
      [
        Alcotest.test_case "build ok" `Quick test_build_ok;
        Alcotest.test_case "rejects bad constants" `Quick
          test_build_rejects_bad_constants;
        Alcotest.test_case "rejects unknown member" `Quick
          test_build_rejects_unknown_member;
        Alcotest.test_case "rejects non-simple child" `Quick
          test_build_rejects_non_simple_child;
        Alcotest.test_case "rejects dependent children" `Quick
          test_build_rejects_dependent_children;
        Alcotest.test_case "audit accepts built design" `Quick
          test_audit_accepts_built_design;
        Alcotest.test_case "audit rejects mangled design" `Quick
          test_audit_rejects_mangled_design;
        Alcotest.test_case "built design runs" `Quick test_built_design_runs;
      ] );
  ]
