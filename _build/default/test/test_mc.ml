(* The zone-reachability model checker: translation rules, lossy product
   semantics, and the Theorem 1 verdicts on the pattern. *)

open Pte_core

let p = Params.case_study

let budget = { Pte_mc.Reach.default_config with max_states = 60_000 }

let kinds result =
  List.sort_uniq compare
    (List.map
       (fun (v : Pte_mc.Reach.violation) ->
         match v.Pte_mc.Reach.kind with
         | Pte_mc.Reach.Rule1_dwell { entity; _ } -> "rule1:" ^ entity
         | Pte_mc.Reach.P1_enter_safeguard { inner; _ } -> "p1:" ^ inner
         | Pte_mc.Reach.P2_not_embedded { inner; _ } -> "p2:" ^ inner
         | Pte_mc.Reach.P3_exit_safeguard { outer; _ } -> "p3:" ^ outer)
       result.Pte_mc.Reach.violations)

let test_translate_clock_classification () =
  let counter = ref 0 in
  let alloc _ = incr counter; !counter in
  let sup = Pattern.supervisor p in
  let ta = Pte_mc.Ta.translate sup ~alloc ~is_system_root:(fun _ -> true) in
  (* c, ls, fb are clocks; approval is an environment variable *)
  Alcotest.(check int) "3 clocks" 3 (List.length ta.Pte_mc.Ta.clock_of_var);
  Alcotest.(check bool) "approval not a clock" true
    (not (List.mem_assoc "approval" ta.Pte_mc.Ta.clock_of_var))

let test_translate_rejects_ode () =
  let counter = ref 0 in
  let alloc _ = incr counter; !counter in
  match
    Pte_mc.Ta.translate Pte_tracheotomy.Patient.automaton ~alloc
      ~is_system_root:(fun _ -> true)
  with
  | exception Pte_mc.Ta.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for ODE flows"

let test_translate_urgency () =
  let counter = ref 0 in
  let alloc _ = incr counter; !counter in
  let init = Pattern.initializer_ p in
  let ta = Pte_mc.Ta.translate init ~alloc ~is_system_root:(fun r ->
      (* only the stimuli have no sender *)
      not (String.length r >= 4 && String.sub r 0 4 = "stim"))
  in
  let loc name =
    let rec go i =
      if ta.Pte_mc.Ta.locations.(i).Pte_mc.Ta.name = name then
        ta.Pte_mc.Ta.locations.(i)
      else go (i + 1)
    in
    go 0
  in
  (* dispatch locations are urgent; timed locations get derived invariants *)
  Alcotest.(check bool) "Send Req urgent" true (loc "Send Req").Pte_mc.Ta.urgent;
  Alcotest.(check bool) "Risky Core not urgent" false
    (loc "Risky Core").Pte_mc.Ta.urgent;
  Alcotest.(check bool) "Risky Core capped by lease" true
    (List.exists
       (fun (a : Pte_mc.Ta.clock_atom) ->
         a.Pte_mc.Ta.cmp = Pte_mc.Dbm.Le && a.Pte_mc.Ta.const = 20.0)
       (loc "Risky Core").Pte_mc.Ta.invariant)

let test_active_clock_analysis () =
  let counter = ref 0 in
  let alloc _ = incr counter; !counter in
  let init = Pattern.initializer_ p in
  let ta = Pte_mc.Ta.translate init ~alloc ~is_system_root:(fun _ -> true) in
  let active = Pte_mc.Ta.active_clocks ta in
  let c = List.assoc "c" ta.Pte_mc.Ta.clock_of_var in
  let index_of name =
    let rec go i =
      if ta.Pte_mc.Ta.locations.(i).Pte_mc.Ta.name = name then i else go (i + 1)
    in
    go 0
  in
  (* c is read by Risky Core's lease guard *)
  Alcotest.(check bool) "c active in Risky Core" true
    (Pte_mc.Ta.Int_set.mem c active.(index_of "Risky Core"));
  (* in Fall-Back, every outgoing path resets c before reading it *)
  Alcotest.(check bool) "c inactive in Fall-Back" false
    (Pte_mc.Ta.Int_set.mem c active.(index_of "Fall-Back"))

let test_with_lease_no_violation_in_budget () =
  (* bounded sweep of the valid configuration: no violation may surface
     (the full exhaustive proof runs in the benchmark harness) *)
  let r = Pte_mc.Reach.check_pattern ~config:budget p in
  Alcotest.(check (list string)) "no violations" [] (kinds r);
  Alcotest.(check bool) "explored something" true (r.Pte_mc.Reach.states > 1000)

let test_no_lease_rule1 () =
  let r =
    Pte_mc.Reach.check_pattern ~lease:false
      ~config:{ budget with stop_at_first = true }
      p
  in
  Alcotest.(check bool) "found" true
    (List.mem "rule1:ventilator" (kinds r) || List.mem "rule1:laser" (kinds r))

let test_c5_violation_found () =
  let bad =
    {
      p with
      Params.entities =
        [|
          p.Params.entities.(0);
          { (p.Params.entities.(1)) with Params.t_enter_max = 3.0 };
        |];
    }
  in
  let r =
    Pte_mc.Reach.check_pattern ~config:{ budget with stop_at_first = true } bad
  in
  Alcotest.(check bool) "safeguard breach found" true
    (List.exists
       (fun k -> k = "p1:laser" || k = "p2:laser")
       (kinds r))

let test_counterexample_trace () =
  let r =
    Pte_mc.Reach.check_pattern ~lease:false
      ~config:{ budget with stop_at_first = true }
      p
  in
  match r.Pte_mc.Reach.violations with
  | [] -> Alcotest.fail "expected a violation"
  | v :: _ ->
      let trace = r.Pte_mc.Reach.trace v.Pte_mc.Reach.state in
      Alcotest.(check bool) "non-trivial trace" true (List.length trace > 3);
      Alcotest.(check string) "starts at init" "init" (List.hd trace)

let test_tight_dwell_bound_violated () =
  (* demanding a dwell bound below what the pattern guarantees must
     produce a Rule 1 counterexample: the guarantee is T_wait + T_LS1,
     and the ventilator really can dwell T_run,1 + T_exit,1 = 41 s *)
  let r =
    Pte_mc.Reach.check_pattern ~dwell_bound:30.0
      ~config:{ budget with stop_at_first = true }
      p
  in
  Alcotest.(check bool) "rule1 found" true
    (List.exists (fun k -> String.length k >= 5 && String.sub k 0 5 = "rule1") (kinds r))

let test_generous_dwell_bound_ok () =
  let r =
    Pte_mc.Reach.check_pattern ~dwell_bound:60.0 ~config:budget p
  in
  Alcotest.(check (list string)) "no violations at 60s" [] (kinds r)

let suite =
  [
    ( "mc.reach",
      [
        Alcotest.test_case "clock classification" `Quick
          test_translate_clock_classification;
        Alcotest.test_case "rejects ODE flows" `Quick test_translate_rejects_ode;
        Alcotest.test_case "urgency derivation" `Quick test_translate_urgency;
        Alcotest.test_case "active-clock analysis" `Quick
          test_active_clock_analysis;
        Alcotest.test_case "with-lease: clean in budget" `Slow
          test_with_lease_no_violation_in_budget;
        Alcotest.test_case "no-lease: Rule 1 counterexample" `Quick
          test_no_lease_rule1;
        Alcotest.test_case "c5 break: safeguard counterexample" `Quick
          test_c5_violation_found;
        Alcotest.test_case "counterexample trace" `Quick test_counterexample_trace;
        Alcotest.test_case "tight dwell bound refuted" `Quick
          test_tight_dwell_bound_violated;
        Alcotest.test_case "60s dwell bound verified in budget" `Slow
          test_generous_dwell_bound_ok;
      ] );
  ]
