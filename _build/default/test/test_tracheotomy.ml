(* Case-study components: ventilator elaboration, patient dynamics,
   oximeter threshold, surgeon timers, deterministic failure injection. *)

open Pte_hybrid

let params = Pte_core.Params.case_study

let test_ventilator_is_simple_child () =
  Alcotest.(check bool) "A'vent simple" true
    (Automaton.is_simple Pte_tracheotomy.Ventilator.stand_alone)

let test_participant_elaboration () =
  let vent = Pte_tracheotomy.Ventilator.participant params in
  Alcotest.(check string) "named from params" "ventilator" vent.Automaton.name;
  let names = Automaton.location_names vent in
  Alcotest.(check bool) "child present" true
    (List.mem "PumpOut" names && List.mem "PumpIn" names);
  Alcotest.(check bool) "Fall-Back replaced" false (List.mem "Fall-Back" names);
  Alcotest.(check string) "initial" "PumpOut" vent.Automaton.initial_location;
  match Automaton.validate vent with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (String.concat "; " e)

let test_ventilating_predicate () =
  Alcotest.(check bool) "PumpOut" true
    (Pte_tracheotomy.Ventilator.is_ventilating "PumpOut");
  Alcotest.(check bool) "PumpIn" true
    (Pte_tracheotomy.Ventilator.is_ventilating "PumpIn");
  Alcotest.(check bool) "Risky Core" false
    (Pte_tracheotomy.Ventilator.is_ventilating "Risky Core")

let patient_engine () =
  let system =
    System.make ~name:"p"
      [ Pte_tracheotomy.Ventilator.participant params;
        Pte_tracheotomy.Patient.automaton ]
  in
  let engine = Pte_sim.Engine.create ~seed:5 system in
  Pte_tracheotomy.Patient.couple_to_ventilator engine ~ventilator:"ventilator";
  engine

let spo2 engine =
  Pte_sim.Engine.value_of engine Pte_tracheotomy.Patient.name
    Pte_tracheotomy.Patient.spo2_var

let test_patient_stable_when_ventilated () =
  let engine = patient_engine () in
  Pte_sim.Engine.run engine ~until:30.0;
  Alcotest.(check bool) "near healthy" true
    (Float.abs (spo2 engine -. Pte_tracheotomy.Patient.healthy_spo2) < 0.5)

let test_patient_desaturates_on_pause () =
  let engine = patient_engine () in
  (* lease the ventilator directly: inject its lease request stimulus *)
  Pte_sim.Engine.inject engine ~receiver:"ventilator"
    ~root:(Pte_core.Events.lease_req ~participant:"ventilator");
  Pte_sim.Engine.run engine ~until:35.0;
  let low = spo2 engine in
  Alcotest.(check bool)
    (Fmt.str "desaturated to %.1f" low)
    true
    (low < 94.0 && low > 85.0);
  (* after the lease expires (3 + 35 + 6 = 44 s) ventilation resumes and
     SpO2 recovers *)
  Pte_sim.Engine.run engine ~until:90.0;
  Alcotest.(check bool)
    (Fmt.str "recovered to %.1f" (spo2 engine))
    true
    (spo2 engine > 96.0)

let test_oximeter_threshold () =
  let engine = patient_engine () in
  (* add a supervisor-shaped automaton to receive the approval variable *)
  let _ = engine in
  let system =
    System.make ~name:"p"
      [ Pte_core.Pattern.supervisor params;
        Pte_tracheotomy.Ventilator.participant params;
        Pte_tracheotomy.Patient.automaton ]
  in
  let engine = Pte_sim.Engine.create ~seed:6 system in
  Pte_tracheotomy.Patient.couple_to_ventilator engine ~ventilator:"ventilator";
  Pte_tracheotomy.Oximeter.connect engine ~supervisor:"supervisor" ();
  Pte_sim.Engine.run engine ~until:5.0;
  Alcotest.(check (float 0.0)) "approval granted" 1.0
    (Pte_sim.Engine.value_of engine "supervisor" Pte_core.Pattern.approval_var);
  (* force desaturation by pausing the ventilator *)
  Pte_sim.Engine.inject engine ~receiver:"ventilator"
    ~root:(Pte_core.Events.lease_req ~participant:"ventilator");
  Pte_sim.Engine.run engine ~until:48.0;
  Alcotest.(check (float 0.0)) "approval withdrawn" 0.0
    (Pte_sim.Engine.value_of engine "supervisor" Pte_core.Pattern.approval_var)

let test_emulation_builds_and_runs () =
  let config =
    { Pte_tracheotomy.Emulation.default with horizon = 60.0; seed = 11 }
  in
  let built = Pte_tracheotomy.Emulation.build config in
  let trace = Pte_tracheotomy.Emulation.run built in
  Alcotest.(check bool) "trace non-empty" true (List.length trace > 10);
  Alcotest.(check bool) "time advanced" true
    (Pte_sim.Engine.time built.Pte_tracheotomy.Emulation.engine >= 60.0)

let test_short_trial_with_lease_safe () =
  let r =
    Pte_tracheotomy.Trial.run
      { Pte_tracheotomy.Emulation.default with horizon = 240.0; seed = 3 }
  in
  Alcotest.(check int)
    (Fmt.str "violations: %a" Fmt.(list ~sep:comma Pte_core.Monitor.pp_violation)
       r.Pte_tracheotomy.Trial.violations)
    0 r.Pte_tracheotomy.Trial.failures;
  Alcotest.(check bool) "pause bounded by theorem" true
    (r.Pte_tracheotomy.Trial.longest_pause
    <= Pte_core.Params.risky_dwell_bound params +. 0.5)

let test_perfect_channel_both_modes_safe () =
  (* without loss, even the no-lease system behaves in this workload *)
  List.iter
    (fun lease ->
      let r =
        Pte_tracheotomy.Trial.run
          {
            Pte_tracheotomy.Emulation.default with
            horizon = 240.0;
            seed = 4;
            lease;
            loss = Pte_net.Loss.Perfect;
          }
      in
      Alcotest.(check int)
        (Fmt.str "lease=%b failures" lease)
        0 r.Pte_tracheotomy.Trial.failures)
    [ true; false ]

(* Deterministic failure injection: §V scenario 2 — the surgeon cancels
   but the cancel is lost. With the lease the ventilator still resumes
   within its lease; without it the pause overruns the 60 s rule. *)
let lost_cancel_trial ~lease =
  let loss =
    Pte_net.Loss.Adversarial
      (fun _ root -> root = Pte_core.Events.cancel_up ~initializer_:"laser")
  in
  Pte_tracheotomy.Trial.run
    {
      Pte_tracheotomy.Emulation.default with
      horizon = 300.0;
      seed = 12;
      e_ton = 20.0;
      e_toff = 10.0;
      lease;
      loss;
    }

let test_lost_cancel_with_lease () =
  let r = lost_cancel_trial ~lease:true in
  Alcotest.(check int) "no failures" 0 r.Pte_tracheotomy.Trial.failures;
  Alcotest.(check bool) "lease rescued at least once" true
    (r.Pte_tracheotomy.Trial.evt_to_stop >= 1
    || r.Pte_tracheotomy.Trial.vent_lease_expiries >= 1)

let test_lost_cancel_without_lease () =
  let r = lost_cancel_trial ~lease:false in
  Alcotest.(check bool)
    (Fmt.str "pause %.1fs should overrun" r.Pte_tracheotomy.Trial.longest_pause)
    true
    (r.Pte_tracheotomy.Trial.failures >= 1)

let suite =
  [
    ( "tracheotomy",
      [
        Alcotest.test_case "A'vent is simple" `Quick test_ventilator_is_simple_child;
        Alcotest.test_case "participant elaboration" `Quick
          test_participant_elaboration;
        Alcotest.test_case "ventilating predicate" `Quick test_ventilating_predicate;
        Alcotest.test_case "patient stable when ventilated" `Quick
          test_patient_stable_when_ventilated;
        Alcotest.test_case "patient desaturates on pause" `Quick
          test_patient_desaturates_on_pause;
        Alcotest.test_case "oximeter threshold" `Quick test_oximeter_threshold;
        Alcotest.test_case "emulation builds and runs" `Quick
          test_emulation_builds_and_runs;
        Alcotest.test_case "short trial safe (lease)" `Quick
          test_short_trial_with_lease_safe;
        Alcotest.test_case "perfect channel safe (both modes)" `Quick
          test_perfect_channel_both_modes_safe;
        Alcotest.test_case "lost cancel, with lease" `Quick
          test_lost_cancel_with_lease;
        Alcotest.test_case "lost cancel, without lease" `Quick
          test_lost_cancel_without_lease;
      ] );
  ]
