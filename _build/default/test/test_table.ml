(* Table renderer used by the benchmark harness output. *)

open Pte_util

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_render_shape () =
  let t =
    Table.create ~title:"Demo" ~header:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  Table.add_note t "a note";
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 11 = "== Demo ==\n");
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "note present" true
    (List.exists (fun l -> l = "  note: a note") lines);
  (* all table body lines share the same width *)
  let body =
    List.filter (fun l -> String.length l > 0 && (l.[0] = '|' || l.[0] = '+')) lines
  in
  let widths = List.map String.length body in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_alignment () =
  let t =
    Table.create ~title:"T" ~header:[ "n" ] ~aligns:[ Table.Right ] ()
  in
  Table.add_row t [ "7" ];
  Table.add_row t [ "123" ];
  let out = Table.render t in
  Alcotest.(check bool) "right aligned" true (contains out "|   7 |")

let test_fmt_helpers () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.fmt_float nan);
  Alcotest.(check string) "int" "42" (Table.fmt_int 42);
  Alcotest.(check string) "bool" "yes" (Table.fmt_bool true)

let suite =
  [
    ( "util.table",
      [
        Alcotest.test_case "render shape" `Quick test_render_shape;
        Alcotest.test_case "alignment" `Quick test_alignment;
        Alcotest.test_case "formatters" `Quick test_fmt_helpers;
      ] );
  ]
