(* The §V scenario experiments as regression tests: each must keep
   telling the paper's story deterministically. *)

let check_episode name ~lease ~max_pause ~failures
    (e : Pte_tracheotomy.Scenarios.episode) =
  Alcotest.(check bool) (name ^ ": lease flag") lease
    e.Pte_tracheotomy.Scenarios.lease;
  Alcotest.(check int)
    (Fmt.str "%s: failures (pause %.1fs, emission %.1fs)" name
       e.Pte_tracheotomy.Scenarios.pause_duration
       e.Pte_tracheotomy.Scenarios.emission_duration)
    failures e.Pte_tracheotomy.Scenarios.failures;
  if e.Pte_tracheotomy.Scenarios.pause_duration > max_pause then
    Alcotest.failf "%s: pause %.1fs exceeds %.1fs" name
      e.Pte_tracheotomy.Scenarios.pause_duration max_pause

let test_fig1_timeline () =
  let tl = Pte_tracheotomy.Scenarios.fig1_timeline ~cancel_at:10.0 () in
  Alcotest.(check bool) "t1 >= 3" true (tl.Pte_tracheotomy.Scenarios.t1 >= 3.0);
  Alcotest.(check bool) "t2 >= 1.5" true (tl.Pte_tracheotomy.Scenarios.t2 >= 1.5);
  Alcotest.(check bool) "t3 <= 60" true (tl.Pte_tracheotomy.Scenarios.t3 <= 60.0);
  Alcotest.(check bool) "t4 <= 60" true (tl.Pte_tracheotomy.Scenarios.t4 <= 60.0);
  (* the emission sits strictly inside the pause *)
  Alcotest.(check bool) "embedding" true
    (tl.Pte_tracheotomy.Scenarios.t3
    > tl.Pte_tracheotomy.Scenarios.t1 +. tl.Pte_tracheotomy.Scenarios.t4)

let test_s1_clean () =
  check_episode "S1 lease" ~lease:true ~max_pause:47.0 ~failures:0
    (Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease:true ());
  (* without the lease the SpO2 abort still rescues on a clean channel *)
  check_episode "S1 no-lease" ~lease:false ~max_pause:60.0 ~failures:0
    (Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease:false ())

let test_s1_lease_rescue_is_evt_to_stop () =
  let e = Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease:true () in
  Alcotest.(check int) "one evtToStop" 1 e.Pte_tracheotomy.Scenarios.evt_to_stop;
  Alcotest.(check bool) "emission bounded by lease" true
    (e.Pte_tracheotomy.Scenarios.emission_duration <= 20.0 +. 2.0)

let test_s1_blackout () =
  check_episode "S1 blackout lease" ~lease:true ~max_pause:47.0 ~failures:0
    (Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~abort_blackout:true
       ~lease:true ());
  let e =
    Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~abort_blackout:true
      ~lease:false ()
  in
  Alcotest.(check bool) "no-lease blackout fails" true
    (e.Pte_tracheotomy.Scenarios.failures >= 1);
  Alcotest.(check bool) "pause ran long" true
    (e.Pte_tracheotomy.Scenarios.pause_duration > 100.0)

let test_s2 () =
  check_episode "S2 lease" ~lease:true ~max_pause:47.0 ~failures:0
    (Pte_tracheotomy.Scenarios.s2_lost_cancel ~lease:true ());
  let e = Pte_tracheotomy.Scenarios.s2_lost_cancel ~lease:false () in
  Alcotest.(check int) "no-lease fails once" 1
    e.Pte_tracheotomy.Scenarios.failures;
  Alcotest.(check bool) "pause just over the bound" true
    (e.Pte_tracheotomy.Scenarios.pause_duration > 60.0
    && e.Pte_tracheotomy.Scenarios.pause_duration < 80.0)

let test_s3 () =
  let outcomes, episode = Pte_tracheotomy.Scenarios.s3_c5_violated () in
  Alcotest.(check (list string)) "only c5 flagged" [ "c5" ]
    (List.map Pte_core.Constraints.condition_name
       (Pte_core.Constraints.violated outcomes));
  Alcotest.(check bool) "episode violates" true
    (episode.Pte_tracheotomy.Scenarios.failures >= 1);
  Alcotest.(check bool) "specifically an enter-safeguard breach" true
    (List.exists
       (function
         | Pte_core.Monitor.Enter_safeguard _ | Pte_core.Monitor.Not_embedded _ ->
             true
         | _ -> false)
       episode.Pte_tracheotomy.Scenarios.violations)

let suite =
  [
    ( "tracheotomy.scenarios",
      [
        Alcotest.test_case "Fig 1 timeline" `Quick test_fig1_timeline;
        Alcotest.test_case "S1 clean channel" `Quick test_s1_clean;
        Alcotest.test_case "S1 lease rescue = evtToStop" `Quick
          test_s1_lease_rescue_is_evt_to_stop;
        Alcotest.test_case "S1 abort blackout" `Quick test_s1_blackout;
        Alcotest.test_case "S2 lost cancel" `Quick test_s2;
        Alcotest.test_case "S3 c5 violated" `Quick test_s3;
      ] );
  ]
