(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus the extension experiments of DESIGN.md) and runs the
   Bechamel performance microbenches.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe T1 X1      # a subset, by experiment id

   Experiment ids: T1 F1 F2 F3 F6 SV1 SV2 SV3 V1 V2 X1 X2 X3 A1 A2 A3 R1 C1
   P1 P2 S1 (see DESIGN.md, "Per-experiment index"). Output is plain text
   tables so the run can be diffed against EXPERIMENTS.md. `--smoke` shrinks
   the workloads (fewer occurrences/trials, shorter horizons) for CI-sized
   runs. *)

open Pte_util

let params = Pte_core.Params.case_study
let smoke = ref false

(* Machine-readable companions to the bench tables: BENCH_<id>.json next
   to the text output, so the perf/robustness trajectory diffs across
   PRs. Schema: { bench, seed, params, metrics: [ {name, ..., mean,
   ci95, n} ] }. *)
let write_bench_json ~bench ~seed ~params ~metrics =
  let module J = Pte_campaign.Json in
  let path = Fmt.str "BENCH_%s.json" bench in
  let json =
    J.Obj
      [ ("bench", J.Str bench); ("seed", J.Num (Float.of_int seed));
        ("params", J.Obj params); ("metrics", J.Arr metrics) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." path

let summary_fields (s : Pte_campaign.Aggregate.summary) =
  let module J = Pte_campaign.Json in
  [ ("mean", J.Num s.Pte_campaign.Aggregate.mean);
    ("ci95", J.Num s.Pte_campaign.Aggregate.ci95);
    ("n", J.Num (Float.of_int s.Pte_campaign.Aggregate.n)) ]
  @
  (* indicator metrics carry the boundary-honest Wilson interval too *)
  match s.Pte_campaign.Aggregate.wilson with
  | None -> []
  | Some (lo, hi) -> [ ("wilson_lo", J.Num lo); ("wilson_hi", J.Num hi) ]

(* ------------------------------------------------------------------ *)
(* T1: Table I — PTE safety rule violation statistics                  *)
(* ------------------------------------------------------------------ *)

let t1 () =
  let table =
    Table.create
      ~title:"T1 / Table I: PTE safety-rule violation statistics (30-min trials)"
      ~header:
        [ "Trial Mode"; "E(Toff) s"; "Emissions"; "(paper)"; "Failures";
          "(paper)"; "evtToStop"; "(paper)"; "longest pause s"; "loss %" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let paper = [ (19, 0, 5); (11, 4, 0); (19, 0, 3); (12, 3, 0) ] in
  let rows = Pte_tracheotomy.Trial.table1 ~seed:2013 () in
  List.iter2
    (fun (mode, e_toff, (row : Pte_tracheotomy.Trial.replicated)) (pe, pf, ps) ->
      let r = row.Pte_tracheotomy.Trial.rep0 in
      Table.add_row table
        [ mode; Table.fmt_float ~decimals:0 e_toff;
          Table.fmt_int r.Pte_tracheotomy.Trial.emissions; Table.fmt_int pe;
          Table.fmt_int r.Pte_tracheotomy.Trial.failures; Table.fmt_int pf;
          Table.fmt_int r.Pte_tracheotomy.Trial.evt_to_stop; Table.fmt_int ps;
          Table.fmt_float ~decimals:1 r.Pte_tracheotomy.Trial.longest_pause;
          Table.fmt_float ~decimals:0
            (100.0 *. r.Pte_tracheotomy.Trial.effective_loss_rate) ])
    rows paper;
  Table.add_note table
    "each trial: 1800 simulated s, E(Ton)=30 s, constant WiFi-style bursty interference";
  Table.add_note table
    "shape to match the paper: with-lease rows have 0 failures and >0 evtToStop rescues;";
  Table.add_note table
    "without-lease rows have several failures and 0 evtToStop (no lease to expire).";
  Table.print table;
  (* robustness of the shape across seeds *)
  let robust =
    Table.create ~title:"T1b: Table I shape across 5 independent seeds"
      ~header:
        [ "seed"; "failures (lease, 18s/6s)"; "failures (none, 18s/6s)";
          "evtToStop (lease, 18s/6s)" ]
      ~aligns:[ Table.Right; Table.Left; Table.Left; Table.Left ] ()
  in
  List.iter
    (fun seed ->
      let rows = Pte_tracheotomy.Trial.table1 ~seed () in
      let get i =
        let _, _, row = List.nth rows i in
        row.Pte_tracheotomy.Trial.rep0
      in
      Table.add_row robust
        [ Table.fmt_int seed;
          Fmt.str "%d / %d" (get 0).Pte_tracheotomy.Trial.failures
            (get 2).Pte_tracheotomy.Trial.failures;
          Fmt.str "%d / %d" (get 1).Pte_tracheotomy.Trial.failures
            (get 3).Pte_tracheotomy.Trial.failures;
          Fmt.str "%d / %d" (get 0).Pte_tracheotomy.Trial.evt_to_stop
            (get 2).Pte_tracheotomy.Trial.evt_to_stop ])
    [ 1; 101; 2013; 4096; 9999 ];
  Table.add_note robust
    "with-lease failures must be 0 for every seed; without-lease failures must be > 0 in at least one E(Toff) column per seed";
  Table.print robust;
  (* MAC-layer retransmission variant (the TMote-Sky radios retransmit;
     our default channel does not) *)
  let mac =
    Table.create
      ~title:"T1c: with 3 MAC retransmissions per frame (TMote-Sky-like)"
      ~header:
        [ "Trial Mode"; "E(Toff) s"; "Emissions"; "Failures"; "evtToStop";
          "frame loss %" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (lease, e_toff, seed) ->
      let r =
        Pte_tracheotomy.Trial.run
          { Pte_tracheotomy.Emulation.default with
            lease; e_toff; seed; mac_retries = 3 }
      in
      Table.add_row mac
        [ (if lease then "with Lease" else "without Lease");
          Table.fmt_float ~decimals:0 e_toff;
          Table.fmt_int r.Pte_tracheotomy.Trial.emissions;
          Table.fmt_int r.Pte_tracheotomy.Trial.failures;
          Table.fmt_int r.Pte_tracheotomy.Trial.evt_to_stop;
          Table.fmt_float ~decimals:0
            (100.0 *. r.Pte_tracheotomy.Trial.effective_loss_rate) ])
    [ (true, 18.0, 2013); (false, 18.0, 2014); (true, 6.0, 2015);
      (false, 6.0, 2016) ];
  Table.add_note mac
    "retries cut residual frame loss and lift session throughput toward the paper's counts; bursty interference still defeats retries often enough that the no-lease rows keep failing";
  Table.print mac

(* ------------------------------------------------------------------ *)
(* F1: the Fig. 1 timeline of one leased episode                       *)
(* ------------------------------------------------------------------ *)

let f1 () =
  let tl = Pte_tracheotomy.Scenarios.fig1_timeline ~cancel_at:10.0 () in
  let table =
    Table.create ~title:"F1 / Fig. 1: measured PTE timeline of one episode"
      ~header:[ "quantity"; "measured s"; "requirement" ]
      ~aligns:[ Table.Left; Table.Right; Table.Left ] ()
  in
  Table.add_row table
    [ "t1: pause -> emission spacing";
      Table.fmt_float tl.Pte_tracheotomy.Scenarios.t1;
      ">= T_risky:1->2 = 3.0 s" ];
  Table.add_row table
    [ "t2: laser-off -> resume spacing";
      Table.fmt_float tl.Pte_tracheotomy.Scenarios.t2;
      ">= T_safe:2->1 = 1.5 s" ];
  Table.add_row table
    [ "t3: ventilator pause duration";
      Table.fmt_float tl.Pte_tracheotomy.Scenarios.t3; "<= 60 s (Rule 1)" ];
  Table.add_row table
    [ "t4: laser emission duration";
      Table.fmt_float tl.Pte_tracheotomy.Scenarios.t4; "<= 60 s (Rule 1)" ];
  Table.add_note table
    "single leased episode, perfect channel, surgeon cancels 10 s into the emission";
  Table.print table

(* ------------------------------------------------------------------ *)
(* F2: the stand-alone ventilator of Fig. 2                            *)
(* ------------------------------------------------------------------ *)

let f2 () =
  let open Pte_hybrid in
  let vent = Pte_tracheotomy.Ventilator.stand_alone in
  let config =
    { Executor.default_config with
      dt = 1e-3;
      sample_vars = [ ("vent-standalone", "Hvent") ];
      sample_period = 0.5 }
  in
  let exec = Executor.create ~config (System.make ~name:"f2" [ vent ]) in
  Executor.run exec ~until:30.0;
  let trace = Executor.trace exec in
  let strokes = Trace.transitions_of trace ~automaton:"vent-standalone" in
  let periods =
    let times = List.map (fun (t, _, _, _) -> t) strokes in
    match times with
    | [] | [ _ ] -> []
    | _ :: rest ->
        List.map2 (fun a b -> b -. a)
          (List.filteri (fun i _ -> i < List.length times - 1) times)
          rest
  in
  let samples =
    Pte_sim.Metrics.series trace ~automaton:"vent-standalone" ~var:"Hvent"
  in
  let heights = List.map snd samples in
  let table =
    Table.create ~title:"F2 / Fig. 2: stand-alone ventilator A'vent (30 s run)"
      ~header:[ "quantity"; "measured"; "expected" ]
      ~aligns:[ Table.Left; Table.Right; Table.Left ] ()
  in
  Table.add_row table
    [ "stroke reversals"; Table.fmt_int (List.length strokes);
      "10 (one per 3 s)" ];
  Table.add_row table
    [ "mean stroke period (s)"; Table.fmt_float (Stats.mean periods);
      "3.00 (0.3 m at 0.1 m/s)" ];
  Table.add_row table
    [ "min Hvent (m)"; Table.fmt_float (Stats.minimum heights); "0.00" ];
  Table.add_row table
    [ "max Hvent (m)"; Table.fmt_float (Stats.maximum heights); "0.30" ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* F3: structure of the generated pattern automata (Figs. 3 and 5)     *)
(* ------------------------------------------------------------------ *)

let f3 () =
  let open Pte_hybrid in
  let table =
    Table.create
      ~title:"F3 / Figs. 3+5: generated pattern automata, structural inventory"
      ~header:[ "N"; "role"; "locations"; "edges"; "risky locs"; "clock vars" ]
      ~aligns:
        [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun n ->
      let p =
        if n = 2 then params
        else
          Pte_core.Synthesis.synthesize_exn
            (Pte_core.Synthesis.default_requirements
               ~entity_names:(List.init n (fun i -> Printf.sprintf "xi%d" (i + 1)))
               ~safeguards:
                 (List.init (n - 1) (fun _ ->
                      { Pte_core.Params.enter_risky_min = 2.0;
                        exit_safe_min = 1.0 })))
      in
      let row role (a : Automaton.t) =
        Table.add_row table
          [ string_of_int n; role;
            Table.fmt_int (List.length a.Automaton.locations);
            Table.fmt_int (List.length a.Automaton.edges);
            Table.fmt_int (List.length (Automaton.risky_locations a));
            Table.fmt_int (List.length a.Automaton.vars) ]
      in
      row "Supervisor (Asupvsr)" (Pte_core.Pattern.supervisor p);
      row "Participant (Aptcpnt,1)" (Pte_core.Pattern.participant p ~index:1);
      row "Initializer (Ainitzr)" (Pte_core.Pattern.initializer_ p))
    [ 2; 3; 4; 5 ];
  Table.add_note table
    "zero-dwell dispatch locations materialize the paper's footnote-2 intermediate locations";
  Table.print table

(* ------------------------------------------------------------------ *)
(* F6: the atomic elaboration example                                  *)
(* ------------------------------------------------------------------ *)

let f6 () =
  let open Pte_hybrid in
  let parent =
    Automaton.make ~name:"fig6" ~vars:[ "x" ]
      ~locations:
        [ Location.make ~flow:(Flow.Rates [ ("x", 1.0) ]) "Fall-Back";
          Location.make ~kind:Location.Risky ~flow:(Flow.Rates [ ("x", 1.0) ])
            "Risky" ]
      ~edges:
        [ Edge.make ~guard:[ Guard.atom "x" Guard.Ge 5.0 ]
            ~reset:(Reset.set "x" 0.0) ~src:"Fall-Back" ~dst:"Risky" ();
          Edge.make ~guard:[ Guard.atom "x" Guard.Ge 2.0 ]
            ~reset:(Reset.set "x" 0.0) ~src:"Risky" ~dst:"Fall-Back" () ]
      ~initial_location:"Fall-Back" ()
  in
  let child = Pte_tracheotomy.Ventilator.stand_alone in
  let elaborated = Elaboration.atomic_exn parent "Fall-Back" child in
  let table =
    Table.create
      ~title:"F6 / Fig. 6: atomic elaboration E(A, Fall-Back, A'vent)"
      ~header:[ "automaton"; "locations"; "edges"; "vars"; "initial" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  let row label (a : Automaton.t) =
    Table.add_row table
      [ label;
        Table.fmt_int (List.length a.Automaton.locations);
        Table.fmt_int (List.length a.Automaton.edges);
        Table.fmt_int (List.length a.Automaton.vars);
        a.Automaton.initial_location ]
  in
  row "A (Fig. 6a)" parent;
  row "A'vent (Fig. 2)" child;
  row "A'' = E(A, Fall-Back, A'vent)" elaborated;
  let has_edge src dst =
    List.exists
      (fun (e : Edge.t) -> e.Edge.src = src && e.Edge.dst = dst)
      elaborated.Automaton.edges
  in
  Table.add_note table
    (Printf.sprintf
       "Risky->PumpOut edge: %s; Risky->PumpIn edge: %s (paper: ingress only \
        to the child's initial location)"
       (Table.fmt_bool (has_edge "Risky" "PumpOut"))
       (Table.fmt_bool (has_edge "Risky" "PumpIn")));
  Table.add_note table
    (Printf.sprintf
       "independence (Def. 2): %s; simplicity of A'vent (Def. 3): %s"
       (Table.fmt_bool (Automaton.independent parent child))
       (Table.fmt_bool (Automaton.is_simple child)));
  Table.print table

(* ------------------------------------------------------------------ *)
(* S1-S3: the Section V failure scenarios                              *)
(* ------------------------------------------------------------------ *)

let scenario_table ~title ~note episodes =
  let table =
    Table.create ~title
      ~header:
        [ "variant"; "lease"; "emission s"; "pause s"; "failures"; "evtToStop";
          "aborts" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (variant, (e : Pte_tracheotomy.Scenarios.episode)) ->
      Table.add_row table
        [ variant; Table.fmt_bool e.Pte_tracheotomy.Scenarios.lease;
          Table.fmt_float ~decimals:1
            e.Pte_tracheotomy.Scenarios.emission_duration;
          Table.fmt_float ~decimals:1
            e.Pte_tracheotomy.Scenarios.pause_duration;
          Table.fmt_int e.Pte_tracheotomy.Scenarios.failures;
          Table.fmt_int e.Pte_tracheotomy.Scenarios.evt_to_stop;
          Table.fmt_int e.Pte_tracheotomy.Scenarios.aborts ])
    episodes;
  Table.add_note table note;
  Table.print table

let sv1 () =
  scenario_table ~title:"SV1: surgeon forgets to cancel (Toff -> 1 hour)"
    ~note:
      "with the lease the laser self-stops at T_run,2=20 s; without it only \
       the SpO2 abort chain can intervene — and a blackout of those messages \
       leaves the no-lease system stuck (the paper's 'no one can terminate' \
       case)"
    [
      ( "clean channel",
        Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease:true () );
      ( "clean channel",
        Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~lease:false () );
      ( "abort blackout",
        Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~abort_blackout:true
          ~lease:true () );
      ( "abort blackout",
        Pte_tracheotomy.Scenarios.s1_forgotten_cancel ~abort_blackout:true
          ~lease:false () );
    ]

let sv2 () =
  scenario_table
    ~title:"SV2: surgeon cancels but evt(laser->supervisor)Cancel is lost"
    ~note:
      "the laser stops itself either way; without the lease the supervisor \
       never learns and the ventilator's pause overruns the 60 s bound"
    [
      ("cancel lost", Pte_tracheotomy.Scenarios.s2_lost_cancel ~lease:true ());
      ("cancel lost", Pte_tracheotomy.Scenarios.s2_lost_cancel ~lease:false ());
    ]

let sv3 () =
  let outcomes, episode = Pte_tracheotomy.Scenarios.s3_c5_violated () in
  let table =
    Table.create
      ~title:
        "SV3: configuration constraint c5 deliberately violated (T_enter,2 = \
         T_enter,1)"
      ~header:[ "check"; "verdict" ]
      ~aligns:[ Table.Left; Table.Left ] ()
  in
  List.iter
    (fun (o : Pte_core.Constraints.outcome) ->
      if not o.Pte_core.Constraints.ok then
        Table.add_row table
          [ Pte_core.Constraints.condition_name o.Pte_core.Constraints.condition;
            "VIOLATED — " ^ o.Pte_core.Constraints.detail ])
    outcomes;
  Table.add_row table
    [ "simulated episode";
      Fmt.str "%a" Pte_tracheotomy.Scenarios.pp_episode episode ];
  List.iter
    (fun v ->
      Table.add_note table (Fmt.str "%a" Pte_core.Monitor.pp_violation v))
    episode.Pte_tracheotomy.Scenarios.violations;
  Table.print table

(* ------------------------------------------------------------------ *)
(* V1: Theorem 1, verified by exhaustive zone reachability             *)
(* ------------------------------------------------------------------ *)

let v1 () =
  let table =
    Table.create
      ~title:"V1 / Theorem 1: zone-reachability verdicts under arbitrary loss"
      ~header:
        [ "system"; "states"; "transitions"; "exhaustive"; "violations";
          "time s" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Left; Table.Left;
          Table.Right ]
      ()
  in
  let run label check =
    let t0 = Unix.gettimeofday () in
    let r = check () in
    let dt = Unix.gettimeofday () -. t0 in
    let kinds =
      List.sort_uniq compare
        (List.map
           (fun (v : Pte_mc.Reach.violation) ->
             Fmt.str "%a" Pte_mc.Reach.pp_violation_kind v.Pte_mc.Reach.kind)
           r.Pte_mc.Reach.violations)
    in
    Table.add_row table
      [ label;
        Table.fmt_int r.Pte_mc.Reach.states;
        Table.fmt_int r.Pte_mc.Reach.transitions;
        Table.fmt_bool r.Pte_mc.Reach.exhausted;
        (if kinds = [] then "none" else String.concat " | " kinds);
        Table.fmt_float ~decimals:1 dt ]
  in
  run "with lease (c1-c7 hold)" (fun () -> Pte_mc.Reach.check_pattern params);
  run "without lease" (fun () ->
      Pte_mc.Reach.check_pattern ~lease:false
        ~config:{ Pte_mc.Reach.default_config with stop_at_first = true }
        params);
  run "with lease, dwell bound 60 s (trial rule)" (fun () ->
      Pte_mc.Reach.check_pattern ~dwell_bound:60.0 params);
  Table.add_note table
    "exhaustive + none = a machine-checked proof of the PTE safety rules for \
     this configuration under arbitrary loss";
  Table.print table

(* ------------------------------------------------------------------ *)
(* V2: ablations of each Theorem 1 condition                           *)
(* ------------------------------------------------------------------ *)

let v2 () =
  let with_entity i f =
    let entities = Array.map Fun.id params.Pte_core.Params.entities in
    entities.(i) <- f entities.(i);
    { params with Pte_core.Params.entities }
  in
  let ablations =
    [
      ( "c2", "T_LS1 <= N*T_wait (tiny participant lease)",
        with_entity 0 (fun e ->
            { e with Pte_core.Params.t_enter_max = 1.0; t_run_max = 2.0;
              t_exit = 2.0 }) );
      ("c3", "T_req,N above T_LS1",
       { params with Pte_core.Params.t_req_max = 50.0 });
      ( "c4", "initializer lease longer than T_LS1",
        with_entity 1 (fun e -> { e with Pte_core.Params.t_run_max = 60.0 }) );
      ( "c5", "T_enter,2 = T_enter,1 (paper's scenario)",
        with_entity 1 (fun e -> { e with Pte_core.Params.t_enter_max = 3.0 }) );
      ( "c6", "outer lease shorter than inner",
        with_entity 0 (fun e -> { e with Pte_core.Params.t_run_max = 20.0 }) );
      ( "c7", "T_exit,1 below T_safe:2->1",
        with_entity 0 (fun e -> { e with Pte_core.Params.t_exit = 1.0 }) );
    ]
  in
  let table =
    Table.create
      ~title:
        "V2: breaking each Theorem 1 condition — checker verdict vs model \
         checker"
      ~header:[ "cond"; "ablation"; "checker"; "model checker (bounded)" ]
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left ] ()
  in
  List.iter
    (fun (cname, description, p) ->
      let violated =
        List.map Pte_core.Constraints.condition_name
          (Pte_core.Constraints.violated (Pte_core.Constraints.check p))
      in
      let r =
        Pte_mc.Reach.check_pattern
          ~config:
            { Pte_mc.Reach.default_config with
              max_states = 40_000;
              stop_at_first = true }
          p
      in
      let mc =
        match r.Pte_mc.Reach.violations with
        | [] ->
            Fmt.str "no violation in %d states%s" r.Pte_mc.Reach.states
              (if r.Pte_mc.Reach.exhausted then " [exhaustive]" else "")
        | v :: _ ->
            Fmt.str "%a" Pte_mc.Reach.pp_violation_kind v.Pte_mc.Reach.kind
      in
      Table.add_row table
        [ cname; description; "flags " ^ String.concat "," violated; mc ])
    ablations;
  Table.add_note table
    "c1 (positivity) is rejected statically by the checker; it has no \
     executable ablation";
  Table.add_note table
    "a clean bounded sweep for an ablation (e.g. c3) means the condition \
     guards self-reset/liveness arguments of the proof rather than an \
     immediately reachable PTE breach";
  Table.print table

(* ------------------------------------------------------------------ *)
(* X1: loss-rate sweep                                                 *)
(* ------------------------------------------------------------------ *)

let x1 () =
  let table =
    Table.create
      ~title:
        "X1: average loss-rate sweep, with vs without lease (30-min trials)"
      ~header:
        [ "avg loss"; "emissions (lease)"; "failures (lease)";
          "emissions (none)"; "failures (none)"; "longest pause none s" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let losses = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ] in
  let rows = Pte_tracheotomy.Trial.loss_sweep ~losses () in
  List.iter
    (fun (loss, (w : Pte_tracheotomy.Trial.replicated), n) ->
      let w = w.Pte_tracheotomy.Trial.rep0
      and n = n.Pte_tracheotomy.Trial.rep0 in
      Table.add_row table
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          Table.fmt_int w.Pte_tracheotomy.Trial.emissions;
          Table.fmt_int w.Pte_tracheotomy.Trial.failures;
          Table.fmt_int n.Pte_tracheotomy.Trial.emissions;
          Table.fmt_int n.Pte_tracheotomy.Trial.failures;
          Table.fmt_float ~decimals:1 n.Pte_tracheotomy.Trial.longest_pause ])
    rows;
  Table.add_note table
    "with-lease failures stay at 0 at every loss rate (Theorem 1); no-lease \
     failures appear as soon as recovery messages start to vanish";
  Table.print table;
  (* replicated variant: the campaign engine turns each sweep point into
     reps independently-seeded trials with 95% CIs *)
  let reps = 5 in
  let agg =
    Table.create
      ~title:
        (Fmt.str "X1b: the same sweep at %d replicates per point (mean ±95%% CI)"
           reps)
      ~header:
        [ "avg loss"; "failures (lease)"; "failures (none)";
          "failing reps (none)"; "longest pause none s" ]
      ~aligns:[ Table.Right; Table.Left; Table.Left; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun (loss, (w : Pte_tracheotomy.Trial.replicated), n) ->
      let wa = w.Pte_tracheotomy.Trial.agg and na = n.Pte_tracheotomy.Trial.agg in
      Table.add_row agg
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary
            wa.Pte_tracheotomy.Trial.failures;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary
            na.Pte_tracheotomy.Trial.failures;
          Fmt.str "%d/%d" na.Pte_tracheotomy.Trial.failure_reps
            na.Pte_tracheotomy.Trial.reps;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary
            na.Pte_tracheotomy.Trial.longest_pause ])
    (Pte_tracheotomy.Trial.loss_sweep ~losses:[ 0.0; 0.2; 0.4; 0.6 ] ~reps ());
  Table.add_note agg
    "replicate 0 of each point reuses the X1 seed; replicates 1+ are split off \
     the campaign master seed, so the aggregate is reproducible at any worker \
     count";
  Table.print agg

(* ------------------------------------------------------------------ *)
(* A1: availability vs loss, bare vs reliable transport                *)
(* ------------------------------------------------------------------ *)

let a1 () =
  let module T = Pte_tracheotomy.Trial in
  let losses, reps, horizon, seed =
    if !smoke then ([ 0.0; 0.3; 0.6 ], 2, 300.0, 900)
    else ([ 0.0; 0.15; 0.3; 0.45; 0.6 ], 5, 1800.0, 900)
  in
  let tcfg = Pte_net.Transport.default_config in
  let budget =
    Pte_net.Transport.worst_case_latency tcfg ~frame_delay:0.03
  in
  let rows = T.availability_sweep ~reps ~horizon ~seed ~losses () in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "A1: laser availability vs loss, bare vs reliable transport \
            (with lease, %g s trials, %d replicates)"
           horizon reps)
      ~header:
        [ "avg loss"; "emissions (bare)"; "emissions (reliable)";
          "failures bare/rel"; "retx (rel)"; "gave-up (rel)" ]
      ~aligns:
        [ Table.Right; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (loss, (b : T.replicated), (r : T.replicated)) ->
      Table.add_row table
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary b.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary r.T.agg.T.emissions;
          Fmt.str "%d / %d" b.T.agg.T.failure_reps r.T.agg.T.failure_reps;
          Table.fmt_int r.T.rep0.T.retransmissions;
          Table.fmt_int r.T.rep0.T.gave_up ])
    rows;
  Table.add_note table
    (Fmt.str
       "reliable = ACK + <= %d retransmissions (worst-case latency %.2f s, \
        inside the %.1f s Theorem-1 slack: c1-c7 recheck passes)"
       tcfg.Pte_net.Transport.max_retries budget
       (Pte_core.Constraints.max_delay_budget params));
  Table.add_note table
    "failures must be 0 in every with-lease cell, bare or reliable; the \
     availability gap opens as loss grows";
  Table.print table;
  let module J = Pte_campaign.Json in
  let metric_rows =
    List.concat_map
      (fun (loss, (b : T.replicated), (r : T.replicated)) ->
        List.concat_map
          (fun (transport, (row : T.replicated)) ->
            [ J.Obj
                ([ ("name", J.Str "emissions"); ("loss", J.Num loss);
                   ("transport", J.Str transport) ]
                @ summary_fields row.T.agg.T.emissions);
              J.Obj
                ([ ("name", J.Str "failures"); ("loss", J.Num loss);
                   ("transport", J.Str transport) ]
                @ summary_fields row.T.agg.T.failures) ])
          [ ("bare", b); ("reliable", r) ])
      rows
  in
  write_bench_json ~bench:"A1" ~seed
    ~params:
      [ ("horizon", J.Num horizon); ("reps", J.Num (Float.of_int reps));
        ("losses", J.Arr (List.map (fun l -> J.Num l) losses));
        ("max_retries", J.Num (Float.of_int tcfg.Pte_net.Transport.max_retries));
        ("base_rto", J.Num tcfg.Pte_net.Transport.base_rto);
        ("multiplier", J.Num tcfg.Pte_net.Transport.multiplier);
        ("cap", J.Num tcfg.Pte_net.Transport.cap);
        ("jitter", J.Num tcfg.Pte_net.Transport.jitter);
        ("worst_case_latency", J.Num budget) ]
    ~metrics:metric_rows

(* ------------------------------------------------------------------ *)
(* A2: availability across transports (bare / ARQ / time-triggered)    *)
(* ------------------------------------------------------------------ *)

(* N = 3 leg of A2: the multi-initiator chain of examples/, one trial
   per (loss, transport). Returns the emissions of the top entity, the
   violation count, and the transport's measured/bounded latencies. *)
let a2_chain_trial ~params:p ~config ~top ~horizon ~transport ~loss ~seed =
  let system = Pte_core.Multi.system config in
  let net =
    Pte_net.Star.create ~base:p.Pte_core.Params.supervisor
      ~remotes:(Pte_core.Pattern.remotes p)
      ~loss_kind:
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss)
      ~rng:(Rng.create ((seed * 2) + 1))
      ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~transport ~seed system
  in
  List.iter
    (fun (automaton, request, cancel) ->
      Pte_sim.Scenario.exponential_stimulus engine ~mean:40.0 ~automaton
        ~armed_in:"Fall-Back" ~root:request ();
      let emitting =
        if String.equal automaton top then "Risky Core"
        else Pte_core.Multi.init_suffix "Risky Core"
      in
      Pte_sim.Scenario.exponential_stimulus engine ~mean:10.0 ~automaton
        ~armed_in:emitting ~root:cancel ())
    (Pte_core.Multi.stimuli config);
  Pte_sim.Engine.run engine ~until:horizon;
  let trace = Pte_sim.Engine.trace engine in
  let spec = Pte_core.Rules.of_params p in
  let report = Pte_core.Monitor.analyze_system trace system spec ~horizon in
  let transport = Option.get (Pte_sim.Engine.transport engine) in
  let tstats = Pte_net.Transport.stats transport in
  ( Pte_sim.Metrics.entries trace ~automaton:top ~location:"Risky Core",
    Pte_core.Monitor.episodes report,
    tstats.Pte_net.Transport.worst_latency,
    Option.map Pte_sched.Schedule.worst_case_latency
      (Pte_net.Transport.schedule transport) )

let a2 () =
  let module T = Pte_tracheotomy.Trial in
  let module J = Pte_campaign.Json in
  let losses, reps, horizon, chain_horizon, seed =
    if !smoke then ([ 0.0; 0.3 ], 1, 300.0, 120.0, 940)
    else ([ 0.0; 0.3; 0.6 ], 3, 1800.0, 600.0, 940)
  in
  let transports =
    [ ("bare", `Bare);
      ("reliable", `Reliable Pte_net.Transport.default_config);
      (* budget left unset: Emulation.build fills in the Theorem-1
         budget and rejects any schedule that overshoots it *)
      ("scheduled", `Scheduled Pte_sched.Synth.default_policy) ]
  in
  (* --- N = 2: the case-study emulation, campaign-replicated --- *)
  let rows = T.transport_matrix ~reps ~horizon ~seed ~transports ~losses () in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "A2: availability vs loss across transports, N=2 case study \
            (with lease, %g s trials, %d replicates)"
           horizon reps)
      ~header:
        [ "avg loss"; "emissions (bare)"; "emissions (reliable)";
          "emissions (scheduled)"; "failures b/r/s"; "sched worst/bound s" ]
      ~aligns:
        [ Table.Right; Table.Left; Table.Left; Table.Left; Table.Right;
          Table.Right ]
      ()
  in
  let violation_cells = ref 0 in
  let bound_breaches = ref 0 in
  let note_cell (row : T.replicated) =
    if row.T.agg.T.failure_reps > 0 then incr violation_cells;
    match row.T.rep0.T.schedule with
    | None -> ()
    | Some sched ->
        if
          row.T.rep0.T.worst_latency
          > Pte_sched.Schedule.worst_case_latency sched
        then incr bound_breaches
  in
  List.iter
    (fun (loss, cells) ->
      List.iter (fun (_, row) -> note_cell row) cells;
      let get label = List.assoc label cells in
      let b = get "bare" and r = get "reliable" and s = get "scheduled" in
      Table.add_row table
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary b.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary r.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary s.T.agg.T.emissions;
          Fmt.str "%d / %d / %d" b.T.agg.T.failure_reps r.T.agg.T.failure_reps
            s.T.agg.T.failure_reps;
          Fmt.str "%.2f / %.2f" s.T.rep0.T.worst_latency
            (match s.T.rep0.T.schedule with
            | Some sched -> Pte_sched.Schedule.worst_case_latency sched
            | None -> nan) ])
    rows;
  Table.add_note table
    "failures must be 0 in every with-lease cell; the scheduled mode's \
     measured worst delivery latency must stay under its synthesized bound";
  Table.print table;
  (* --- N = 3: the synthesized multi-initiator chain --- *)
  let entity_names = [ "pump"; "xray"; "carm" ] in
  let params3 =
    Pte_core.Synthesis.synthesize_exn
      (Pte_core.Synthesis.default_requirements ~entity_names
         ~safeguards:
           [ { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 };
             { Pte_core.Params.enter_risky_min = 1.0; exit_safe_min = 0.5 } ])
  in
  let config3 = { Pte_core.Multi.params = params3; initiators = [ 1; 3 ] } in
  let top = List.nth entity_names 2 in
  let budget3 = Pte_core.Constraints.max_delay_budget params3 in
  (* reliable leg: shrink the retry budget until Theorem 1 admits it *)
  let probe =
    Pte_net.Star.create ~base:params3.Pte_core.Params.supervisor
      ~remotes:(Pte_core.Pattern.remotes params3)
      ~loss_kind:Pte_net.Loss.Perfect ~rng:(Rng.create 0) ()
  in
  let rec fit (tcfg : Pte_net.Transport.config) =
    let latency =
      Pte_net.Transport.worst_case_latency tcfg
        ~frame_delay:(Pte_net.Star.worst_frame_delay probe)
    in
    if latency <= budget3 || tcfg.Pte_net.Transport.max_retries = 0 then tcfg
    else fit { tcfg with Pte_net.Transport.max_retries = tcfg.max_retries - 1 }
  in
  let tcfg3 = fit Pte_net.Transport.default_config in
  let transports3 =
    [ ("bare", `Bare);
      ("reliable", `Reliable tcfg3);
      ( "scheduled",
        (* the engine layer has no emulation wrapper here, so the
           Theorem-1 budget is pinned explicitly *)
        `Scheduled
          { Pte_sched.Synth.default_policy with budget = Some budget3 } ) ]
  in
  let chain =
    Table.create
      ~title:
        (Fmt.str
           "A2b: N=3 multi-initiator chain, sessions of the top entity \
            (%g s trials)"
           chain_horizon)
      ~header:
        [ "avg loss"; "sessions (bare)"; "sessions (reliable)";
          "sessions (scheduled)"; "viol b/r/s"; "sched worst/bound s" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let chain_rows =
    List.mapi
      (fun i loss ->
        let cells =
          List.map
            (fun (label, transport) ->
              let sessions, violations, worst, bound =
                a2_chain_trial ~params:params3 ~config:config3 ~top
                  ~horizon:chain_horizon ~transport ~loss ~seed:(seed + 50 + i)
              in
              if violations > 0 then incr violation_cells;
              (match bound with
              | Some b when worst > b -> incr bound_breaches
              | _ -> ());
              (label, sessions, violations, worst, bound))
            transports3
        in
        let get label =
          List.find (fun (l, _, _, _, _) -> String.equal l label) cells
        in
        let _, sb, vb, _, _ = get "bare" in
        let _, sr, vr, _, _ = get "reliable" in
        let _, ss, vs, ws, bs = get "scheduled" in
        Table.add_row chain
          [ Fmt.str "%.0f%%" (100.0 *. loss);
            Table.fmt_int sb; Table.fmt_int sr; Table.fmt_int ss;
            Fmt.str "%d / %d / %d" vb vr vs;
            Fmt.str "%.2f / %.2f" ws (Option.value bs ~default:nan) ];
        (loss, cells))
      losses
  in
  Table.add_note chain
    (Fmt.str
       "synthesized chain budget %.3f s; reliable fitted to %d retries; all \
        initiator sessions are lease-protected, so violations must be 0"
       budget3 tcfg3.Pte_net.Transport.max_retries);
  Table.print chain;
  (* --- machine-readable companion --- *)
  let metric_rows_n2 =
    List.concat_map
      (fun (loss, cells) ->
        List.concat_map
          (fun (transport, (row : T.replicated)) ->
            let base name (s : Pte_campaign.Aggregate.summary) =
              J.Obj
                ([ ("name", J.Str name); ("entities", J.Num 2.0);
                   ("loss", J.Num loss); ("transport", J.Str transport) ]
                @ summary_fields s)
            in
            let scalar name v =
              J.Obj
                [ ("name", J.Str name); ("entities", J.Num 2.0);
                  ("loss", J.Num loss); ("transport", J.Str transport);
                  ("mean", J.Num v); ("ci95", J.Num 0.0); ("n", J.Num 1.0) ]
            in
            [ base "emissions" row.T.agg.T.emissions;
              base "failures" row.T.agg.T.failures;
              scalar "worst_latency" row.T.rep0.T.worst_latency ]
            @ (match row.T.rep0.T.schedule with
              | None -> []
              | Some sched ->
                  [ scalar "sched_bound"
                      (Pte_sched.Schedule.worst_case_latency sched) ]))
          cells)
      rows
  in
  let metric_rows_n3 =
    List.concat_map
      (fun (loss, cells) ->
        List.concat_map
          (fun (transport, sessions, violations, worst, bound) ->
            let scalar name v =
              J.Obj
                [ ("name", J.Str name); ("entities", J.Num 3.0);
                  ("loss", J.Num loss); ("transport", J.Str transport);
                  ("mean", J.Num v); ("ci95", J.Num 0.0); ("n", J.Num 1.0) ]
            in
            [ scalar "emissions" (Float.of_int sessions);
              scalar "failures" (Float.of_int violations);
              scalar "worst_latency" worst ]
            @
            match bound with
            | None -> []
            | Some b -> [ scalar "sched_bound" b ])
          cells)
      chain_rows
  in
  write_bench_json ~bench:"A2" ~seed
    ~params:
      [ ("horizon", J.Num horizon);
        ("chain_horizon", J.Num chain_horizon);
        ("reps", J.Num (Float.of_int reps));
        ("losses", J.Arr (List.map (fun l -> J.Num l) losses));
        ("entity_counts", J.Arr [ J.Num 2.0; J.Num 3.0 ]);
        ("chain_budget", J.Num budget3);
        ("violation_cells", J.Num (Float.of_int !violation_cells));
        ("bound_breaches", J.Num (Float.of_int !bound_breaches)) ]
    ~metrics:(metric_rows_n2 @ metric_rows_n3);
  (* hard gates — `dune build @bench-smoke` fails CI on either *)
  if !violation_cells > 0 then
    Fmt.failwith "A2: %d with-lease cells had violations (expected 0)"
      !violation_cells;
  if !bound_breaches > 0 then
    Fmt.failwith
      "A2: scheduled worst latency exceeded its synthesized bound in %d cells"
      !bound_breaches

(* ------------------------------------------------------------------ *)
(* A3: adaptive transport vs the statics under time-varying loss       *)
(* ------------------------------------------------------------------ *)

let a3 () =
  let module T = Pte_tracheotomy.Trial in
  let module E = Pte_tracheotomy.Emulation in
  let module J = Pte_campaign.Json in
  let horizon, reps, seed =
    if !smoke then (300.0, 1, 950) else (1800.0, 3, 950)
  in
  let switch_at = horizon /. 3.0 in
  let hi = 0.6 in
  (* the high-loss channel is the Table-I Gilbert-Elliott model, so the
     sustained cell exercises genuine loss bursts, not i.i.d. drops *)
  let scenarios =
    [ ("perfect", Pte_net.Loss.Perfect, []);
      ( "step-up",
        Pte_net.Loss.Perfect,
        [ Pte_faults.Plan.loss_step ~at:switch_at ~loss:hi ] );
      ( "step-down",
        Pte_net.Loss.wifi_interference ~average_loss:hi,
        [ Pte_faults.Plan.loss_step ~at:switch_at ~loss:0.0 ] );
      ("ge-burst", Pte_net.Loss.wifi_interference ~average_loss:hi, []) ]
  in
  let transports =
    [ ("bare", `Bare);
      ("reliable", `Reliable Pte_net.Transport.default_config);
      ("scheduled", `Scheduled Pte_sched.Synth.default_policy);
      (* budgets left unset: Emulation.build fills in the Theorem-1
         budget, for the healthy recheck and every escalation *)
      ("adaptive", `Adaptive Pte_net.Transport.default_adaptive) ]
  in
  let cells =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i (_, loss, profile) ->
              List.map
                (fun (_, transport) ->
                  {
                    E.default with
                    E.lease = true;
                    horizon;
                    seed = seed + i;
                    loss;
                    faults =
                      { Pte_faults.Plan.empty with
                        Pte_faults.Plan.loss_profile = profile };
                    transport;
                  })
                transports)
            scenarios))
  in
  let campaign, full = T.run_cells ~reps ~seed cells in
  let width = List.length transports in
  let row si ti =
    let i = (si * width) + ti in
    match full.(i * reps) with
    | Some rep0 ->
        { T.rep0; agg = T.aggregate_of_cell campaign.Pte_campaign.Runner.cells.(i) }
    | None -> assert false (* nothing resumed: every job ran here *)
  in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "A3: adaptive transport vs the static modes under time-varying \
            loss (with lease, %g s trials, %d replicates, steps at %g s)"
           horizon reps switch_at)
      ~header:
        [ "channel"; "emissions (bare)"; "emissions (reliable)";
          "emissions (scheduled)"; "emissions (adaptive)"; "failures b/r/s/a";
          "switches up/down/refused" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left;
          Table.Right; Table.Right ]
      ()
  in
  let violation_cells = ref 0 in
  List.iteri
    (fun si (label, _, _) ->
      let cells = List.mapi (fun ti _ -> row si ti) transports in
      List.iter
        (fun (r : T.replicated) ->
          if r.T.agg.T.failure_reps > 0 then incr violation_cells)
        cells;
      let get ti = List.nth cells ti in
      let b = get 0 and r = get 1 and sc = get 2 and a = get 3 in
      Table.add_row table
        [ label;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary b.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary r.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary sc.T.agg.T.emissions;
          Fmt.str "%a" Pte_campaign.Aggregate.pp_summary a.T.agg.T.emissions;
          Fmt.str "%d / %d / %d / %d" b.T.agg.T.failure_reps
            r.T.agg.T.failure_reps sc.T.agg.T.failure_reps
            a.T.agg.T.failure_reps;
          Fmt.str "%d / %d / %d" a.T.rep0.T.mode_switches_up
            a.T.rep0.T.mode_switches_down a.T.rep0.T.switch_refusals ])
    scenarios;
  Table.add_note table
    "failures must be 0 in every cell; the step cells must contain committed \
     switches (up on step-up, down on step-down); at sustained high loss the \
     adaptive mean must reach the best static mode, and on the perfect \
     channel stay within 5% of bare";
  Table.print table;
  (* --- machine-readable companion --- *)
  let metric_rows =
    List.concat
      (List.mapi
         (fun si (label, _, _) ->
           List.concat
             (List.mapi
                (fun ti (tlabel, _) ->
                  let r = row si ti in
                  let base name (sm : Pte_campaign.Aggregate.summary) =
                    J.Obj
                      ([ ("name", J.Str name); ("channel", J.Str label);
                         ("transport", J.Str tlabel) ]
                      @ summary_fields sm)
                  in
                  let scalar name v =
                    J.Obj
                      [ ("name", J.Str name); ("channel", J.Str label);
                        ("transport", J.Str tlabel); ("mean", J.Num v);
                        ("ci95", J.Num 0.0); ("n", J.Num 1.0) ]
                  in
                  [ base "emissions" r.T.agg.T.emissions;
                    base "failures" r.T.agg.T.failures ]
                  @
                  if String.equal tlabel "adaptive" then
                    [ scalar "switches_up"
                        (Float.of_int r.T.rep0.T.mode_switches_up);
                      scalar "switches_down"
                        (Float.of_int r.T.rep0.T.mode_switches_down);
                      scalar "switch_refusals"
                        (Float.of_int r.T.rep0.T.switch_refusals) ]
                  else [])
                transports))
         scenarios)
  in
  write_bench_json ~bench:"A3" ~seed
    ~params:
      [ ("horizon", J.Num horizon);
        ("reps", J.Num (Float.of_int reps));
        ("switch_at", J.Num switch_at);
        ("high_loss", J.Num hi);
        ("violation_cells", J.Num (Float.of_int !violation_cells)) ]
    ~metrics:metric_rows;
  (* hard gates — `dune build @bench-smoke` fails CI on any of these *)
  if !violation_cells > 0 then
    Fmt.failwith "A3: %d with-lease cells had violations (expected 0)"
      !violation_cells;
  let scenario_index label =
    let rec go i = function
      | [] -> invalid_arg label
      | (l, _, _) :: rest -> if String.equal l label then i else go (i + 1) rest
    in
    go 0 scenarios
  in
  let adaptive label = row (scenario_index label) 3 in
  let up = (adaptive "step-up").T.rep0.T.mode_switches_up in
  if up < 1 then
    Fmt.failwith "A3: step-up trial committed no escalation (expected >= 1)";
  let down = (adaptive "step-down").T.rep0.T.mode_switches_down in
  if down < 1 then
    Fmt.failwith
      "A3: step-down trial committed no de-escalation (expected >= 1)";
  (* the emission gates compare replicate means; smoke trials are too
     short for integer emission counts to carry a 5% comparison *)
  if not !smoke then begin
    let mean label ti = (row (scenario_index label) ti).T.agg.T.emissions.Pte_campaign.Aggregate.mean in
    let best_static =
      Float.max (mean "ge-burst" 0) (Float.max (mean "ge-burst" 1) (mean "ge-burst" 2))
    in
    if mean "ge-burst" 3 < best_static then
      Fmt.failwith
        "A3: adaptive emissions %.1f below the best static mode %.1f at \
         sustained high loss"
        (mean "ge-burst" 3) best_static;
    if mean "perfect" 3 < 0.95 *. mean "perfect" 0 then
      Fmt.failwith
        "A3: adaptive emissions %.1f more than 5%% below bare %.1f on the \
         perfect channel"
        (mean "perfect" 3) (mean "perfect" 0)
  end

(* ------------------------------------------------------------------ *)
(* X2: synthesis scaling with the chain length                         *)
(* ------------------------------------------------------------------ *)

let x2 () =
  let table =
    Table.create
      ~title:
        "X2: synthesized configurations vs chain length N (2 s/1 s safeguards)"
      ~header:
        [ "N"; "T_LS1 s"; "dwell bound s"; "T_enter,N s"; "T_run,1 s"; "c1-c7" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Left ]
      ()
  in
  List.iter
    (fun n ->
      let p =
        Pte_core.Synthesis.synthesize_exn
          (Pte_core.Synthesis.default_requirements
             ~entity_names:(List.init n (fun i -> Printf.sprintf "xi%d" (i + 1)))
             ~safeguards:
               (List.init (n - 1) (fun _ ->
                    { Pte_core.Params.enter_risky_min = 2.0;
                      exit_safe_min = 1.0 })))
      in
      Table.add_row table
        [ string_of_int n;
          Table.fmt_float ~decimals:1 (Pte_core.Params.t_ls1 p);
          Table.fmt_float ~decimals:1 (Pte_core.Params.risky_dwell_bound p);
          Table.fmt_float ~decimals:1
            (Pte_core.Params.initializer_ p).Pte_core.Params.t_enter_max;
          Table.fmt_float ~decimals:1
            p.Pte_core.Params.entities.(0).Pte_core.Params.t_run_max;
          Table.fmt_bool (Pte_core.Constraints.satisfies p) ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Table.add_note table
    "condition c6 forces outer leases to dominate inner ones, so T_run,1 and \
     the dwell bound grow linearly with N";
  Table.print table

(* ------------------------------------------------------------------ *)
(* X3: the multiple-initializer extension                              *)
(* ------------------------------------------------------------------ *)

let x3 () =
  let config =
    { Pte_core.Multi.params; initiators = [ 1; 2 ] }
  in
  let table =
    Table.create
      ~title:
        "X3: multiple-initializer extension (ventilator may request solo \
         pauses; laser requests full sessions)"
      ~header:[ "quantity"; "value" ]
      ~aligns:[ Table.Left; Table.Left ] ()
  in
  (match Pte_core.Multi.check config with
  | Ok outcomes ->
      Table.add_row table
        [ "constraints (c1-c7 + per-initiator c3)";
          (if Pte_core.Constraints.all_ok outcomes then "all hold"
           else "VIOLATED") ]
  | Error e -> Table.add_row table [ "constraints"; "error: " ^ e ]);
  let system = Pte_core.Multi.system config in
  let rng = Pte_util.Rng.create 77 in
  let net =
    Pte_net.Star.create ~base:"supervisor"
      ~remotes:[ "ventilator"; "laser" ]
      ~loss_kind:(Pte_net.Loss.wifi_interference ~average_loss:0.3)
      ~rng ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt = 0.01 }
      ~net ~seed:78 system
  in
  List.iter
    (fun (automaton, request, cancel) ->
      Pte_sim.Scenario.exponential_stimulus engine ~mean:30.0 ~automaton
        ~armed_in:"Fall-Back" ~root:request ();
      let emitting =
        if String.equal automaton "laser" then "Risky Core"
        else Pte_core.Multi.init_suffix "Risky Core"
      in
      Pte_sim.Scenario.exponential_stimulus engine ~mean:10.0 ~automaton
        ~armed_in:emitting ~root:cancel ())
    (Pte_core.Multi.stimuli config);
  let horizon = 1800.0 in
  Pte_sim.Engine.run engine ~until:horizon;
  let trace = Pte_sim.Engine.trace engine in
  let spec = Pte_core.Rules.of_params params in
  let report = Pte_core.Monitor.analyze_system trace system spec ~horizon in
  let count automaton location =
    Pte_sim.Metrics.entries trace ~automaton ~location
  in
  Table.add_row table
    [ "30-min trial: laser sessions";
      Table.fmt_int (count "laser" "Risky Core") ];
  Table.add_row table
    [ "30-min trial: ventilator solo pauses";
      Table.fmt_int (count "ventilator" (Pte_core.Multi.init_suffix "Risky Core")) ];
  Table.add_row table
    [ "30-min trial: ventilator participant leases";
      Table.fmt_int (count "ventilator" "Risky Core") ];
  Table.add_row table
    [ "30-min trial: PTE violation episodes";
      Table.fmt_int (Pte_core.Monitor.episodes report) ];
  let r =
    Pte_mc.Reach.check
      ~config:{ Pte_mc.Reach.default_config with max_states = 100_000 }
      ~system ~spec ()
  in
  Table.add_row table
    [ "model checker (interleaved initiators)";
      Fmt.str "%d states, %d violations%s" r.Pte_mc.Reach.states
        (List.length r.Pte_mc.Reach.violations)
        (if r.Pte_mc.Reach.exhausted then " [exhaustive]" else " [bounded]") ];
  Table.add_note table
    "the paper defers multiple Initializers; sessions are serialized by the \
     supervisor and each is lease-protected, so Theorem 1 applies per session";
  Table.print table

(* ------------------------------------------------------------------ *)
(* R1: deterministic fault injection — coverage matrix + fuzz/shrink   *)
(* ------------------------------------------------------------------ *)

let r1 () =
  let module R = Pte_tracheotomy.Robustness in
  let occurrences, horizon, trials, budget =
    if !smoke then (1, 300.0, 4, 20) else (2, 600.0, 10, 60)
  in
  (* coverage: one scripted drop per protocol root x occurrence, perfect
     channel otherwise, with- and without-lease side by side *)
  let cov = R.coverage ~occurrences ~horizon () in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "R1: message-drop coverage matrix (every root x occurrence 0..%d, \
            %g s trials)"
           (occurrences - 1) horizon)
      ~header:
        [ "root"; "link"; "occ"; "fired"; "viol (lease)"; "viol (none)" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Left; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (row : R.coverage_row) ->
      let m = row.R.target.R.message in
      Table.add_row table
        [ m.Pte_faults.Fuzz.root;
          Fmt.str "%s %slink" m.Pte_faults.Fuzz.site.Pte_faults.Plan.entity
            (match m.Pte_faults.Fuzz.site.Pte_faults.Plan.direction with
            | Pte_faults.Plan.Up -> "up"
            | Pte_faults.Plan.Down -> "down");
          Table.fmt_int row.R.target.R.occurrence;
          Table.fmt_bool row.R.fired;
          Table.fmt_int row.R.with_lease.Pte_tracheotomy.Trial.failures;
          Table.fmt_int row.R.without_lease.Pte_tracheotomy.Trial.failures ])
    cov.R.rows;
  Table.add_note table
    (Fmt.str "roots targeted: %d/%d; exercised (drop fired >= once): %d/%d"
       cov.R.roots_targeted cov.R.roots_total cov.R.roots_exercised
       cov.R.roots_total);
  Table.add_note table
    (Fmt.str
       "with-lease violations: %d (Theorem 1 covers message loss; must be 0); \
        without-lease violations: %d (expected > 0)"
       cov.R.with_lease_violations cov.R.without_lease_violations);
  Table.add_note table
    "unexercised roots (lease_deny, aborts, cancels) need a contended or \
     failing run to occur at all; on a perfect channel they are targeted but \
     never sent";
  Table.print table;
  (* fuzz beyond the paper's fault model (crash, drift, corruption storms)
     and shrink every violating plan to a minimal replayable artifact *)
  let report = R.fuzz ~horizon ~max_oracle_calls:budget ~seed:99 ~trials () in
  let fuzz_table =
    Table.create
      ~title:
        (Fmt.str
           "R1b: fuzz + greedy shrink, %d random plans vs the with-lease \
            system" trials)
      ~header:[ "artifact"; "minimal plan"; "failures"; "trial seed" ]
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right ] ()
  in
  let one_line s =
    String.concat "; "
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))
  in
  List.iteri
    (fun i (a : R.artifact) ->
      Table.add_row fuzz_table
        [ Table.fmt_int i;
          one_line (Fmt.str "%a" Pte_faults.Plan.pp a.R.plan);
          Table.fmt_int a.R.failures;
          Table.fmt_int a.R.trial_seed ])
    report.R.artifacts;
  Table.add_note fuzz_table
    (Fmt.str "%d/%d plans violating; shrinker spent %d oracle replays"
       report.R.violating report.R.trials report.R.oracle_calls);
  Table.add_note fuzz_table
    "crash/drift faults sit outside Theorem 1's loss-only fault model, so \
     with-lease violations here are expected — each artifact replays \
     deterministically from its plan + seed alone";
  Table.print fuzz_table;
  (* the same coverage targets rerun over the reliable transport: every
     scripted drop hits one link frame, so the retransmission budget is
     expected to carry every message through end-to-end *)
  let rcov =
    R.coverage ~occurrences ~horizon
      ~transport:(`Reliable Pte_net.Transport.default_config) ()
  in
  let recovery =
    Table.create
      ~title:"R1c: coverage rerun over the reliable transport"
      ~header:[ "transport"; "viol (lease)"; "viol (none)"; "exercised" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ] ()
  in
  List.iter
    (fun (label, (c : R.coverage)) ->
      Table.add_row recovery
        [ label;
          Table.fmt_int c.R.with_lease_violations;
          Table.fmt_int c.R.without_lease_violations;
          Fmt.str "%d/%d" c.R.roots_exercised c.R.roots_total ])
    [ ("bare", cov); ("reliable", rcov) ];
  Table.add_note recovery
    "reliable must keep the with-lease column at 0; a single scripted drop \
     is recovered by retransmission, so even the without-lease baseline \
     rides through";
  Table.print recovery;
  let module J = Pte_campaign.Json in
  let coverage_metrics label (c : R.coverage) =
    [ J.Obj
        [ ("name", J.Str "with_lease_violations"); ("transport", J.Str label);
          ("mean", J.Num (Float.of_int c.R.with_lease_violations));
          ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int (List.length c.R.rows))) ];
      J.Obj
        [ ("name", J.Str "without_lease_violations");
          ("transport", J.Str label);
          ("mean", J.Num (Float.of_int c.R.without_lease_violations));
          ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int (List.length c.R.rows))) ];
      J.Obj
        [ ("name", J.Str "roots_exercised"); ("transport", J.Str label);
          ("mean", J.Num (Float.of_int c.R.roots_exercised));
          ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int c.R.roots_total)) ] ]
  in
  write_bench_json ~bench:"R1" ~seed:7100
    ~params:
      [ ("occurrences", J.Num (Float.of_int occurrences));
        ("horizon", J.Num horizon);
        ("fuzz_trials", J.Num (Float.of_int trials));
        ("fuzz_seed", J.Num 99.0) ]
    ~metrics:
      (coverage_metrics "bare" cov
      @ coverage_metrics "reliable" rcov
      @ [ J.Obj
            [ ("name", J.Str "fuzz_violating");
              ("mean", J.Num (Float.of_int report.R.violating));
              ("ci95", J.Num 0.0);
              ("n", J.Num (Float.of_int report.R.trials)) ] ])

(* ------------------------------------------------------------------ *)
(* C1: rare-event certification — SPRT screen + importance splitting   *)
(* ------------------------------------------------------------------ *)

let c1 () =
  let module C = Pte_tracheotomy.Certify in
  let module Seq = Pte_rare.Seq in
  let module Split = Pte_rare.Split in
  let config = if !smoke then C.smoke else C.default in
  let report = C.run ~config () in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "C1: rare-event certification at target %.0e, confidence %g \
            (%.0f-min trials, %d particles x %d stages)"
           config.C.target config.C.confidence
           (config.C.horizon /. 60.0)
           config.C.split.Split.particles config.C.split.Split.max_stages)
      ~header:
        [ "design"; "screen"; "stages"; "bound"; "effective trials";
          "trials run"; "verdict" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun (cell : C.cell) ->
      let screen =
        match cell.C.screen with
        | None -> "skipped"
        | Some s ->
            Fmt.str "%a (%d/%d)" Seq.pp_verdict s.Seq.verdict s.Seq.hits
              s.Seq.trials
      in
      let stages =
        match cell.C.split with
        | None -> "-"
        | Some s -> Table.fmt_int (List.length s.Split.stages)
      in
      Table.add_row table
        [ cell.C.design.C.label; screen; stages;
          Fmt.str "%.3g" cell.C.bound;
          Fmt.str "%.3g" cell.C.effective_trials;
          Table.fmt_int cell.C.trials_run;
          (if cell.C.certified then "CERTIFIED" else "not certified") ])
    report.C.cells;
  Table.add_note table
    "with-lease must certify the bound (splitting over fault-plan severity \
     finds no violating path);";
  Table.add_note table
    "without-lease must fail at the SPRT screen — the same budget refutes \
     the baseline.";
  Table.print table;
  let module J = Pte_campaign.Json in
  let cell_metrics (cell : C.cell) =
    let label = cell.C.design.C.label in
    let screen_trials =
      match cell.C.screen with None -> 0 | Some s -> s.Seq.trials
    in
    [ J.Obj
        [ ("name", J.Str (label ^ "_bound"));
          ("mean", J.Num cell.C.bound); ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int cell.C.trials_run)) ];
      J.Obj
        [ ("name", J.Str (label ^ "_effective_trials"));
          ("mean", J.Num cell.C.effective_trials); ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int cell.C.trials_run)) ];
      J.Obj
        [ ("name", J.Str (label ^ "_certified"));
          ("mean", J.Num (if cell.C.certified then 1.0 else 0.0));
          ("ci95", J.Num 0.0);
          ("n", J.Num (Float.of_int screen_trials)) ] ]
  in
  write_bench_json ~bench:"C1" ~seed:config.C.seed
    ~params:
      [ ("target", J.Num config.C.target);
        ("confidence", J.Num config.C.confidence);
        ("min_effective", J.Num config.C.min_effective);
        ("horizon", J.Num config.C.horizon);
        ("particles", J.Num (Float.of_int config.C.split.Split.particles));
        ("max_stages", J.Num (Float.of_int config.C.split.Split.max_stages)) ]
    ~metrics:(List.concat_map cell_metrics report.C.cells);
  (* hard gates — `dune build @bench-smoke` fails CI on any of these *)
  let cell label =
    List.find (fun (c : C.cell) -> c.C.design.C.label = label) report.C.cells
  in
  let with_lease = cell "with-lease" and without = cell "without-lease" in
  if not with_lease.C.certified then
    Fmt.failwith
      "C1: with-lease failed to certify %.0e (bound %.3g, %.3g effective \
       trials)"
      config.C.target with_lease.C.bound with_lease.C.effective_trials;
  (match with_lease.C.split with
  | Some s when s.Split.hits > 0 ->
      Fmt.failwith
        "C1: splitting found %d with-lease violation(s) — Theorem 1 broken \
         under the drop/loss fault model"
        s.Split.hits
  | _ -> ());
  (match without.C.screen with
  | Some { Seq.verdict = Seq.Refuted; _ } -> ()
  | _ ->
      Fmt.failwith
        "C1: without-lease baseline was not refuted at the screen (expected \
         its violation rate to reject the bound within a few trials)");
  if without.C.certified then
    Fmt.failwith "C1: without-lease baseline certified — gate logic broken"

(* ------------------------------------------------------------------ *)
(* P1: Bechamel performance microbenches                               *)
(* ------------------------------------------------------------------ *)

let p1 () =
  let open Bechamel in
  let vent_system () =
    Pte_hybrid.System.make ~name:"bench"
      [ Pte_tracheotomy.Ventilator.stand_alone ]
  in
  let trace_for_monitor =
    (* a cached 300 s trial trace for the monitor bench *)
    lazy
      (let built =
         Pte_tracheotomy.Emulation.build
           { Pte_tracheotomy.Emulation.default with horizon = 300.0; seed = 77 }
       in
       let trace = Pte_tracheotomy.Emulation.run built in
       (trace, built))
  in
  let tests =
    [
      Test.make ~name:"rng.exponential.x100"
        (Staged.stage (fun () ->
             let rng = Rng.create 1 in
             for _ = 1 to 100 do
               ignore (Rng.exponential rng ~mean:18.0)
             done));
      Test.make ~name:"crc16.64B"
        (Staged.stage (fun () ->
             ignore (Pte_net.Crc.of_string (String.make 64 'x'))));
      Test.make ~name:"heap.push-pop.100"
        (Staged.stage (fun () ->
             let h = Heap.create ~dummy:0 in
             for i = 1 to 100 do
               Heap.push h (Float.of_int (i * 7919 mod 100)) i
             done;
             while not (Heap.is_empty h) do
               ignore (Heap.pop h)
             done));
      Test.make ~name:"executor.1s-ventilator"
        (Staged.stage (fun () ->
             let exec = Pte_hybrid.Executor.create (vent_system ()) in
             Pte_hybrid.Executor.run exec ~until:1.0));
      Test.make ~name:"pattern.build-N2"
        (Staged.stage (fun () -> ignore (Pte_core.Pattern.system params)));
      Test.make ~name:"constraints.check"
        (Staged.stage (fun () -> ignore (Pte_core.Constraints.check params)));
      Test.make ~name:"monitor.analyze-300s-trace"
        (Staged.stage (fun () ->
             let trace, built = Lazy.force trace_for_monitor in
             ignore
               (Pte_core.Monitor.analyze_system trace
                  built.Pte_tracheotomy.Emulation.system
                  built.Pte_tracheotomy.Emulation.spec ~horizon:300.0)));
      Test.make ~name:"dbm.canonicalize-14clk"
        (Staged.stage (fun () ->
             let z = Pte_mc.Dbm.top ~clocks:13 in
             ignore
               (Pte_mc.Dbm.constrain_atom z ~clock:1 ~cmp:Pte_mc.Dbm.Le
                  ~const:5.0);
             Pte_mc.Dbm.canonicalize z));
      Test.make ~name:"trial.30s-with-lease"
        (Staged.stage (fun () ->
             ignore
               (Pte_tracheotomy.Trial.run
                  { Pte_tracheotomy.Emulation.default with horizon = 30.0;
                    seed = 3 })));
    ]
  in
  ignore (Lazy.force trace_for_monitor);
  let grouped = Test.make_grouped ~name:"pte" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let table =
    Table.create
      ~title:"P1: performance microbenches (Bechamel, monotonic clock)"
      ~header:[ "benchmark"; "time per run"; "r^2" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ] ()
  in
  let rows = ref [] in
  Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results;
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (est :: _) ->
            if est > 1e9 then Fmt.str "%.2f s" (est /. 1e9)
            else if est > 1e6 then Fmt.str "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Fmt.str "%.2f us" (est /. 1e3)
            else Fmt.str "%.0f ns" est
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Fmt.str "%.3f" r
        | None -> "-"
      in
      Table.add_row table [ name; estimate; r2 ])
    (List.sort compare !rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* P2: campaign engine throughput scaling with worker domains          *)
(* ------------------------------------------------------------------ *)

let p2 () =
  (* X1-style workload: lease on/off x two loss rates, replicated — big
     enough to keep several domains busy, small enough to finish fast *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun loss ->
           List.map
             (fun lease ->
               {
                 Pte_tracheotomy.Emulation.default with
                 lease;
                 horizon = 300.0;
                 seed = 900 + (if lease then 0 else 1);
                 loss = Pte_net.Loss.wifi_interference ~average_loss:loss;
               })
             [ true; false ])
         [ 0.25; 0.5 ])
  in
  let reps = 6 in
  let jobs = Array.length cells * reps in
  let table =
    Table.create
      ~title:
        (Fmt.str
           "P2: campaign throughput scaling (%d jobs of 300 sim-s, X1-style)"
           jobs)
      ~header:[ "workers"; "wall s"; "trials/s"; "speedup"; "aggregate" ]
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  let fingerprint (campaign : _ Pte_campaign.Runner.result) =
    (* cheap digest of every per-cell mean, to show runs are identical *)
    Array.fold_left
      (fun acc (cell : Pte_campaign.Aggregate.cell) ->
        List.fold_left
          (fun acc (_, (s : Pte_campaign.Aggregate.summary)) ->
            acc +. s.Pte_campaign.Aggregate.mean)
          acc cell.Pte_campaign.Aggregate.metrics)
      0.0 campaign.Pte_campaign.Runner.cells
  in
  let serial_wall = ref None in
  List.iter
    (fun workers ->
      let t0 = Unix.gettimeofday () in
      let campaign, _ =
        Pte_tracheotomy.Trial.run_cells ~workers ~reps ~seed:900 cells
      in
      let wall = Unix.gettimeofday () -. t0 in
      if !serial_wall = None then serial_wall := Some wall;
      let base = Option.get !serial_wall in
      Table.add_row table
        [ Table.fmt_int workers;
          Table.fmt_float ~decimals:2 wall;
          Table.fmt_float ~decimals:1 (Float.of_int jobs /. wall);
          Fmt.str "%.2fx" (base /. wall);
          Fmt.str "digest %.6g" (fingerprint campaign) ])
    [ 1; 2; 4 ];
  Table.add_note table
    (Fmt.str
       "identical digests = identical aggregates at every worker count; \
        speedup is bounded by the available cores (this host: %d)"
       (Pte_campaign.Pool.default_workers ()));
  Table.print table

(* ------------------------------------------------------------------ *)
(* S1: step-loop throughput at scale (heap queue vs legacy list)       *)
(* ------------------------------------------------------------------ *)

(* Timer-storm cell: [timers] concurrent self-rescheduling timers with
   cancel churn, on a minimal pattern system so the event queue — not
   the Euler advance — is what's being measured. This is the access
   pattern of the transports at scale: ARQ retransmission timers,
   scheduled blind copies and adaptive drains all park revocable timers
   on the shared timeline, and the legacy sorted list pays O(queue) per
   insert and per cancel where the heap pays O(log) / O(1). *)
let s1_storm ~queue ~timers ~horizon ~seed =
  let module E = Pte_hybrid.Executor in
  let system, _ = Pte_core.Scale.system ~n:2 () in
  (* the host system is tiny (3 automata) so the default per-instant
     chain budget (max_chain * automata) is far below a burst of
     [timers] distinct timers landing in one dt window; the storm is
     not Zeno — every firing is a separate due time — so widen the
     budget to cover the worst aligned burst *)
  let config =
    { E.default_config with max_chain = Stdlib.max 64 (4 * timers) }
  in
  let ex = E.create ~config ~queue system in
  let rng = Rng.create seed in
  let decoys = Array.make timers None in
  (* each firing re-arms itself, cancels the previous long-dated decoy
     and parks a new one: steady state is ~2*[timers] live entries plus
     churn, with inserts landing at both ends of the timeline *)
  let rec arm i period =
    ignore
      (E.schedule ex ~owner:"storm" ~at:(E.time ex +. period) (fun ex ->
           (match decoys.(i) with Some d -> E.cancel ex d | None -> ());
           decoys.(i) <-
             Some (E.schedule ex ~at:(E.time ex +. 3600.0) (fun _ -> ()));
           arm i period))
  in
  for i = 0 to timers - 1 do
    arm i (Rng.uniform rng ~lo:0.002 ~hi:0.05)
  done;
  let t0 = Unix.gettimeofday () in
  E.run ex ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let events = E.events_processed ex in
  (events, wall, Float.of_int events /. wall)

(* Full-emulation cell: the N-order pattern of Pte_core.Scale under the
   wireless star, driven by stimuli on the Initializer — requests from
   Fall-Back, cancels mid-cascade (Requesting) and mid-emission (Risky
   Core) — so grant/cancel sweeps keep flowing through all N+1 automata.
   Returns (events, wall); Zeno or Time_block would propagate and fail
   the bench, which is the gate. *)
let s1_emulation ~n ~horizon ~dt ~seed =
  let system, p = Pte_core.Scale.system ~n () in
  let net =
    Pte_net.Star.create ~base:p.Pte_core.Params.supervisor
      ~remotes:(Pte_core.Pattern.remotes p) ~loss_kind:Pte_net.Loss.Perfect
      ~rng:(Rng.create ((seed * 2) + 1))
      ()
  in
  let engine =
    Pte_sim.Engine.create
      ~config:{ Pte_hybrid.Executor.default_config with dt }
      ~net ~transport:`Bare ~seed system
  in
  let init = Pte_core.Scale.initializer_name in
  let request = Pte_core.Events.stim_request ~initializer_:init in
  let cancel = Pte_core.Events.stim_cancel ~initializer_:init in
  Pte_sim.Scenario.exponential_stimulus engine ~mean:30.0 ~immediately:true
    ~automaton:init ~armed_in:"Fall-Back" ~root:request ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:10.0 ~automaton:init
    ~armed_in:"Requesting" ~root:cancel ();
  Pte_sim.Scenario.exponential_stimulus engine ~mean:8.0 ~automaton:init
    ~armed_in:"Risky Core" ~root:cancel ();
  let t0 = Unix.gettimeofday () in
  Pte_sim.Engine.run engine ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let events =
    Pte_hybrid.Executor.events_processed (Pte_sim.Engine.executor engine)
  in
  (events, wall)

let s1_scale () =
  let module J = Pte_campaign.Json in
  let seed = 2024 in
  let sizes, storm_horizon, emu_horizon =
    if !smoke then ([ 4; 64 ], 0.5, 60.0) else ([ 4; 64; 256; 1024 ], 2.0, 1800.0)
  in
  let n_max = List.fold_left max 0 sizes in
  (* --- timer-storm microbench: heap vs legacy list --- *)
  let storm =
    Table.create
      ~title:
        (Fmt.str
           "S1a: event-queue throughput, %g simulated s of N concurrent \
            self-rescheduling timers with cancel churn"
           storm_horizon)
      ~header:
        [ "N timers"; "events"; "list ev/s"; "heap ev/s"; "heap/list" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let storm_cells =
    List.map
      (fun n ->
        let ev_l, _, rate_l =
          s1_storm ~queue:`Legacy_list ~timers:n ~horizon:storm_horizon ~seed
        in
        let ev_h, _, rate_h =
          s1_storm ~queue:`Heap ~timers:n ~horizon:storm_horizon ~seed
        in
        if ev_l <> ev_h then
          Fmt.failwith "S1: queue kinds disagree on work done (%d vs %d)" ev_l
            ev_h;
        let ratio = rate_h /. rate_l in
        Table.add_row storm
          [ Table.fmt_int n; Table.fmt_int ev_h;
            Table.fmt_float ~decimals:0 rate_l;
            Table.fmt_float ~decimals:0 rate_h; Fmt.str "%.1fx" ratio ];
        (n, ev_h, rate_l, rate_h, ratio))
      sizes
  in
  Table.add_note storm
    "both queue kinds fire exactly the same timers; the ratio is pure \
     queue-discipline speedup";
  Table.print storm;
  (* --- full pattern emulation: N+1 automata to completion --- *)
  let emu =
    Table.create
      ~title:
        (Fmt.str
           "S1b: full pattern emulation, N+1 automata for %g simulated s \
            (bare transport, perfect channel)"
           emu_horizon)
      ~header:[ "N"; "dt s"; "events"; "wall s"; "sim-s/wall-s"; "ev/s" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let emu_cells =
    List.map
      (fun n ->
        let dt = 0.01 in
        let events, wall = s1_emulation ~n ~horizon:emu_horizon ~dt ~seed in
        Table.add_row emu
          [ Table.fmt_int n; Table.fmt_float ~decimals:2 dt;
            Table.fmt_int events; Table.fmt_float ~decimals:1 wall;
            Table.fmt_float ~decimals:0 (emu_horizon /. wall);
            Table.fmt_float ~decimals:1 (Float.of_int events /. wall) ];
        (n, dt, events, wall))
      sizes
  in
  Table.add_note emu
    "a cell that wedged (Zeno, time-block, non-finite timer) would have \
     aborted the run; completion is the gate";
  Table.print emu;
  (* hard gates, full runs only: the heap must beat the list by >= 10x
     at the largest N, and that N must be >= 1024 *)
  if not !smoke then begin
    let _, _, _, _, ratio =
      List.find (fun (n, _, _, _, _) -> n = n_max) storm_cells
    in
    if n_max < 1024 then
      Fmt.failwith "S1: full run must reach N=1024 (got %d)" n_max;
    if ratio < 10.0 then
      Fmt.failwith "S1: heap/list throughput ratio %.1fx < 10x at N=%d" ratio
        n_max
  end;
  write_bench_json ~bench:"S1" ~seed
    ~params:
      [ ("sizes", J.Arr (List.map (fun n -> J.Num (Float.of_int n)) sizes));
        ("storm_horizon", J.Num storm_horizon);
        ("emu_horizon", J.Num emu_horizon);
        ("smoke", J.Num (if !smoke then 1.0 else 0.0)) ]
    ~metrics:
      (List.map
         (fun (n, events, rate_l, rate_h, ratio) ->
           J.Obj
             [ ("name", J.Str (Fmt.str "storm_n%04d" n));
               ("events", J.Num (Float.of_int events));
               ("list_events_per_s", J.Num rate_l);
               ("heap_events_per_s", J.Num rate_h);
               ("heap_over_list", J.Num ratio) ])
         storm_cells
      @ List.map
          (fun (n, dt, events, wall) ->
            J.Obj
              [ ("name", J.Str (Fmt.str "emu_n%04d" n)); ("dt", J.Num dt);
                ("events", J.Num (Float.of_int events));
                ("wall_s", J.Num wall);
                ("sim_per_wall", J.Num (emu_horizon /. wall));
                ("events_per_s", J.Num (Float.of_int events /. wall)) ])
          emu_cells)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("T1", t1); ("F1", f1); ("F2", f2); ("F3", f3); ("F6", f6); ("SV1", sv1);
    ("SV2", sv2); ("SV3", sv3); ("V1", v1); ("V2", v2); ("X1", x1); ("X2", x2);
    ("X3", x3); ("A1", a1); ("A2", a2); ("A3", a3); ("R1", r1); ("C1", c1);
    ("P1", p1); ("P2", p2); ("S1", s1_scale);
  ]

let () =
  let args =
    List.filter
      (fun a ->
        if String.equal a "--smoke" then (
          smoke := true;
          false)
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with
    | _ :: _ as ids -> List.map String.uppercase_ascii ids
    | [] -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  Fmt.pr "PTE-Lease benchmark harness — reproducing the paper's evaluation@.";
  Fmt.pr "configuration: %a@.@." Pte_core.Params.pp params;
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f ->
          let t = Unix.gettimeofday () in
          f ();
          Fmt.pr "[%s done in %.1fs]@.@." id (Unix.gettimeofday () -. t)
      | None ->
          Fmt.epr "unknown experiment id %S (known: %s)@." id
            (String.concat " " (List.map fst experiments)))
    requested;
  Fmt.pr "total: %.1fs@." (Unix.gettimeofday () -. t0)
