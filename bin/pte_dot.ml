(* `pte-dot`: export the pattern/case-study automata as Graphviz, the
   repository's analogue of the paper's figures.

     dune exec bin/pte_dot.exe -- supervisor > supervisor.dot
     dune exec bin/pte_dot.exe -- ventilator-elaborated | dot -Tsvg > vent.svg
     dune exec bin/pte_dot.exe -- --lint initializer-nolease   # diagnosed
       locations/edges in crimson, lint codes in the label/tooltip *)

open Cmdliner

let automata =
  [
    ("supervisor", fun () -> Pte_core.Pattern.supervisor Pte_core.Params.case_study);
    ("initializer", fun () -> Pte_core.Pattern.initializer_ Pte_core.Params.case_study);
    ("initializer-nolease", fun () ->
        Pte_core.Pattern.initializer_ ~lease:false Pte_core.Params.case_study);
    ("participant", fun () ->
        Pte_core.Pattern.participant Pte_core.Params.case_study ~index:1);
    ("participant-nolease", fun () ->
        Pte_core.Pattern.participant ~lease:false Pte_core.Params.case_study
          ~index:1);
    ("ventilator-standalone", fun () -> Pte_tracheotomy.Ventilator.stand_alone);
    ("ventilator-elaborated", fun () ->
        Pte_tracheotomy.Ventilator.participant Pte_core.Params.case_study);
    ("patient", fun () -> Pte_tracheotomy.Patient.automaton);
  ]

(* Fold per-site diagnostics into Dot highlight annotations: each
   diagnosed location/edge gets the comma-joined list of its codes. *)
let highlights diags =
  let add assoc key code =
    match List.assoc_opt key assoc with
    | Some codes when List.mem code codes -> assoc
    | Some codes -> (key, codes @ [ code ]) :: List.remove_assoc key assoc
    | None -> (key, [ code ]) :: assoc
  in
  let locs, edges =
    List.fold_left
      (fun (locs, edges) (d : Pte_lint.Diagnostic.t) ->
        match (d.Pte_lint.Diagnostic.location, d.Pte_lint.Diagnostic.edge) with
        | Some l, _ -> (add locs l d.Pte_lint.Diagnostic.code, edges)
        | None, Some e -> (locs, add edges e d.Pte_lint.Diagnostic.code)
        | None, None -> (locs, edges))
      ([], []) diags
  in
  let join l = List.map (fun (k, codes) -> (k, String.concat ", " codes)) l in
  (join locs, join edges)

let run lint which =
  match List.assoc_opt which automata with
  | Some build ->
      let a = build () in
      let highlight_locations, highlight_edges =
        if lint then highlights (Pte_lint.Lint.lint_automaton a) else ([], [])
      in
      print_string
        (Pte_hybrid.Dot.to_string ~highlight_locations ~highlight_edges a)
  | None ->
      Fmt.epr "unknown automaton %S; choose from: %s@." which
        (String.concat ", " (List.map fst automata));
      exit 2

let cmd =
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the static analyzer on the automaton and highlight \
             diagnosed locations/edges (crimson, diagnostic codes in the \
             label and tooltip).")
  in
  let which =
    Arg.(
      value
      & pos 0 string "supervisor"
      & info [] ~docv:"AUTOMATON" ~doc:"Which automaton to export.")
  in
  let doc = "export case-study hybrid automata as Graphviz dot" in
  Cmd.v (Cmd.info "pte-dot" ~doc) Term.(const run $ lint $ which)

let () = exit (Cmd.eval cmd)
