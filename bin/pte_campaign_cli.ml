(* `pte-campaign`: parallel, checkpointable Monte-Carlo trial campaigns.

     dune exec bin/pte_campaign_cli.exe -- table1 --reps 20 --workers 4
     dune exec bin/pte_campaign_cli.exe -- sweep --losses 0,0.2,0.4 --reps 10
     dune exec bin/pte_campaign_cli.exe -- table1 --out r.jsonl --resume

   Results are deterministic for a given --seed at any --workers count;
   --out appends each completed trial to a JSONL checkpoint, and --resume
   skips trials already recorded there. *)

open Cmdliner

let setup_logs verbose =
  if verbose then begin
    let reporter =
      let report _src level ~over k msgf =
        msgf (fun ?header:_ ?tags:_ fmt ->
            let k _ = over (); k () in
            Format.kfprintf k Format.err_formatter
              ("[%s] " ^^ fmt ^^ "@.")
              (match level with
              | Logs.Error -> "error"
              | Logs.Warning -> "warn"
              | _ -> "info"))
      in
      { Logs.report }
    in
    Logs.set_reporter reporter;
    Logs.set_level (Some Logs.Info)
  end

let summary_line (campaign : _ Pte_campaign.Runner.result) =
  Fmt.pr "campaign: %d jobs — %d ok, %d failed, %d resumed@."
    (Array.length campaign.Pte_campaign.Runner.outcomes)
    campaign.Pte_campaign.Runner.ok campaign.Pte_campaign.Runner.failed
    campaign.Pte_campaign.Runner.resumed

let fmt_summary (s : Pte_campaign.Aggregate.summary) =
  if s.Pte_campaign.Aggregate.n < 2 then
    Fmt.str "%.1f" s.Pte_campaign.Aggregate.mean
  else
    Fmt.str "%.1f ±%.1f" s.Pte_campaign.Aggregate.mean
      s.Pte_campaign.Aggregate.ci95

let aggregate_columns (a : Pte_tracheotomy.Trial.aggregate) =
  [
    Pte_util.Table.fmt_int a.Pte_tracheotomy.Trial.reps;
    fmt_summary a.Pte_tracheotomy.Trial.emissions;
    fmt_summary a.Pte_tracheotomy.Trial.failures;
    Fmt.str "%d/%d" a.Pte_tracheotomy.Trial.failure_reps
      a.Pte_tracheotomy.Trial.reps;
    fmt_summary a.Pte_tracheotomy.Trial.evt_to_stop;
    fmt_summary a.Pte_tracheotomy.Trial.longest_pause;
  ]

let aggregate_header = [ "reps"; "emissions"; "failures"; "failing reps"; "evtToStop"; "longest pause s" ]

let aggregate_aligns =
  Pte_util.Table.[ Right; Right; Right; Right; Right; Right ]

let exit_of_campaign (campaign : _ Pte_campaign.Runner.result) =
  if campaign.Pte_campaign.Runner.failed > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* table1 subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_table1 reps seed workers minutes out resume verbose =
  setup_logs verbose;
  let cells = Pte_tracheotomy.Trial.table1_cells ~seed in
  let configs =
    Array.map
      (fun (_, _, c) ->
        { c with Pte_tracheotomy.Emulation.horizon = minutes *. 60.0 })
      cells
  in
  let campaign, _ =
    Pte_tracheotomy.Trial.run_cells ?workers ?checkpoint:out ~resume ~reps
      ~seed configs
  in
  summary_line campaign;
  let table =
    Pte_util.Table.create
      ~title:
        (Fmt.str "Table I campaign: %g-minute trials, seed %d, %d replicates"
           minutes seed reps)
      ~header:([ "Trial Mode"; "E(Toff) s" ] @ aggregate_header)
      ~aligns:(Pte_util.Table.[ Left; Right ] @ aggregate_aligns)
      ()
  in
  Array.iteri
    (fun i (mode, e_toff, _) ->
      let agg =
        Pte_tracheotomy.Trial.aggregate_of_cell
          campaign.Pte_campaign.Runner.cells.(i)
      in
      Pte_util.Table.add_row table
        ([ mode; Pte_util.Table.fmt_float ~decimals:0 e_toff ]
        @ aggregate_columns agg))
    cells;
  Pte_util.Table.print table;
  exit_of_campaign campaign

(* ------------------------------------------------------------------ *)
(* sweep subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let run_sweep losses reps seed workers minutes out resume verbose =
  setup_logs verbose;
  let horizon = minutes *. 60.0 in
  let cell ~lease i loss =
    {
      Pte_tracheotomy.Emulation.default with
      lease;
      horizon;
      seed = seed + i;
      loss =
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
    }
  in
  let configs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i loss -> [ cell ~lease:true i loss; cell ~lease:false i loss ])
            losses))
  in
  let campaign, _ =
    Pte_tracheotomy.Trial.run_cells ?workers ?checkpoint:out ~resume ~reps
      ~seed configs
  in
  summary_line campaign;
  let table =
    Pte_util.Table.create
      ~title:
        (Fmt.str
           "Loss sweep campaign: %g-minute trials, seed %d, %d replicates"
           minutes seed reps)
      ~header:
        [ "avg loss"; "failures (lease)"; "failing reps (lease)";
          "failures (none)"; "failing reps (none)"; "longest pause none s" ]
      ~aligns:
        Pte_util.Table.[ Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iteri
    (fun i loss ->
      let agg j =
        Pte_tracheotomy.Trial.aggregate_of_cell
          campaign.Pte_campaign.Runner.cells.(j)
      in
      let w = agg (2 * i) and n = agg ((2 * i) + 1) in
      Pte_util.Table.add_row table
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          fmt_summary w.Pte_tracheotomy.Trial.failures;
          Fmt.str "%d/%d" w.Pte_tracheotomy.Trial.failure_reps
            w.Pte_tracheotomy.Trial.reps;
          fmt_summary n.Pte_tracheotomy.Trial.failures;
          Fmt.str "%d/%d" n.Pte_tracheotomy.Trial.failure_reps
            n.Pte_tracheotomy.Trial.reps;
          fmt_summary n.Pte_tracheotomy.Trial.longest_pause ])
    losses;
  Pte_util.Table.print table;
  exit_of_campaign campaign

(* ------------------------------------------------------------------ *)
(* terms                                                              *)
(* ------------------------------------------------------------------ *)

let pos_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Fmt.str "expected a positive number, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let reps =
  Arg.(
    value & opt pos_int 5
    & info [ "reps" ] ~docv:"N" ~doc:"Independently-seeded replicates per cell.")

let seed =
  Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"N" ~doc:"Campaign master seed.")

let workers =
  Arg.(
    value & opt (some pos_int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains (default: all available cores).")

let minutes =
  Arg.(
    value & opt float 30.0
    & info [ "minutes" ] ~docv:"MIN" ~doc:"Simulated length of each trial.")

let out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Append each completed trial to this JSONL checkpoint file.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:"Skip jobs already recorded in the $(b,--out) file.")

let verbose =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Report progress (trials/s, ETA) on stderr.")

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Run the four Table I cells as a campaign.")
    Term.(
      const run_table1 $ reps $ seed $ workers $ minutes $ out $ resume
      $ verbose)

let losses =
  Arg.(
    value
    & opt (list float) [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ]
    & info [ "losses" ] ~docv:"P,P,..."
        ~doc:"Average loss rates to sweep (with and without lease each).")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep average loss rates, with vs without lease (X1-style).")
    Term.(
      const run_sweep $ losses $ reps $ seed $ workers $ minutes $ out $ resume
      $ verbose)

let cmd =
  Cmd.group
    (Cmd.info "pte-campaign"
       ~doc:"parallel, checkpointable Monte-Carlo emulation campaigns"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs grids of laser-tracheotomy emulation trials on a pool of \
              worker domains. Per-trial PRNG streams are split off the master \
              seed by job index, so results are identical at any worker count \
              and across checkpoint/resume cycles.";
         ])
    [ table1_cmd; sweep_cmd ]

let () =
  match Cmd.eval_value ~catch:false cmd with
  | exception Pte_campaign.Checkpoint.Mismatch msg ->
      Fmt.epr "pte-campaign: %s@." msg;
      exit 3
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error `Parse -> exit Cmd.Exit.cli_error
  | Error (`Term | `Exn) -> exit Cmd.Exit.internal_error
