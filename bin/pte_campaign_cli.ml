(* `pte-campaign`: parallel, checkpointable Monte-Carlo trial campaigns.

     dune exec bin/pte_campaign_cli.exe -- table1 --reps 20 --workers 4
     dune exec bin/pte_campaign_cli.exe -- sweep --losses 0,0.2,0.4 --reps 10
     dune exec bin/pte_campaign_cli.exe -- table1 --out r.jsonl --resume

   Results are deterministic for a given --seed at any --workers count;
   --out appends each completed trial to a JSONL checkpoint, and --resume
   skips trials already recorded there. *)

open Cmdliner

let setup_logs verbose =
  if verbose then begin
    let reporter =
      let report _src level ~over k msgf =
        msgf (fun ?header:_ ?tags:_ fmt ->
            let k _ = over (); k () in
            Format.kfprintf k Format.err_formatter
              ("[%s] " ^^ fmt ^^ "@.")
              (match level with
              | Logs.Error -> "error"
              | Logs.Warning -> "warn"
              | _ -> "info"))
      in
      { Logs.report }
    in
    Logs.set_reporter reporter;
    Logs.set_level (Some Logs.Info)
  end

let summary_line (campaign : _ Pte_campaign.Runner.result) =
  Fmt.pr "campaign: %d jobs — %d ok, %d failed, %d resumed@."
    (Array.length campaign.Pte_campaign.Runner.outcomes)
    campaign.Pte_campaign.Runner.ok campaign.Pte_campaign.Runner.failed
    campaign.Pte_campaign.Runner.resumed

let fmt_summary (s : Pte_campaign.Aggregate.summary) =
  if s.Pte_campaign.Aggregate.n < 2 then
    Fmt.str "%.1f" s.Pte_campaign.Aggregate.mean
  else
    Fmt.str "%.1f ±%.1f" s.Pte_campaign.Aggregate.mean
      s.Pte_campaign.Aggregate.ci95

(* Failing-reps column with the Wilson 95% interval on the violation
   rate: "0/20 [0,16%]" says what 0-out-of-20 actually certifies, where
   the normal-approximation half-width would degenerate to +-0. *)
let fmt_failing_reps (a : Pte_tracheotomy.Trial.aggregate) =
  let base =
    Fmt.str "%d/%d" a.Pte_tracheotomy.Trial.failure_reps
      a.Pte_tracheotomy.Trial.reps
  in
  match a.Pte_tracheotomy.Trial.failure_rate.Pte_campaign.Aggregate.wilson with
  | Some (lo, hi) when a.Pte_tracheotomy.Trial.reps >= 2 ->
      Fmt.str "%s [%.0f,%.0f%%]" base (100.0 *. lo) (100.0 *. hi)
  | _ -> base

let aggregate_columns (a : Pte_tracheotomy.Trial.aggregate) =
  [
    Pte_util.Table.fmt_int a.Pte_tracheotomy.Trial.reps;
    fmt_summary a.Pte_tracheotomy.Trial.emissions;
    fmt_summary a.Pte_tracheotomy.Trial.failures;
    fmt_failing_reps a;
    fmt_summary a.Pte_tracheotomy.Trial.evt_to_stop;
    fmt_summary a.Pte_tracheotomy.Trial.longest_pause;
  ]

let aggregate_header = [ "reps"; "emissions"; "failures"; "failing reps"; "evtToStop"; "longest pause s" ]

let aggregate_aligns =
  Pte_util.Table.[ Right; Right; Right; Right; Right; Right ]

let exit_of_campaign (campaign : _ Pte_campaign.Runner.result) =
  if campaign.Pte_campaign.Runner.failed > 0 then begin
    Fmt.epr
      "pte-campaign: %d job(s) failed after retries — the aggregates \
       above rest on dropped trials@."
      campaign.Pte_campaign.Runner.failed;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* table1 subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_table1 reps seed workers minutes out resume verbose =
  setup_logs verbose;
  let cells = Pte_tracheotomy.Trial.table1_cells ~seed in
  let configs =
    Array.map
      (fun (_, _, c) ->
        { c with Pte_tracheotomy.Emulation.horizon = minutes *. 60.0 })
      cells
  in
  let campaign, _ =
    Pte_tracheotomy.Trial.run_cells ?workers ?checkpoint:out ~resume ~reps
      ~seed configs
  in
  summary_line campaign;
  let table =
    Pte_util.Table.create
      ~title:
        (Fmt.str "Table I campaign: %g-minute trials, seed %d, %d replicates"
           minutes seed reps)
      ~header:([ "Trial Mode"; "E(Toff) s" ] @ aggregate_header)
      ~aligns:(Pte_util.Table.[ Left; Right ] @ aggregate_aligns)
      ()
  in
  Array.iteri
    (fun i (mode, e_toff, _) ->
      let agg =
        Pte_tracheotomy.Trial.aggregate_of_cell
          campaign.Pte_campaign.Runner.cells.(i)
      in
      Pte_util.Table.add_row table
        ([ mode; Pte_util.Table.fmt_float ~decimals:0 e_toff ]
        @ aggregate_columns agg))
    cells;
  Pte_util.Table.print table;
  exit_of_campaign campaign

(* ------------------------------------------------------------------ *)
(* sweep subcommand                                                   *)
(* ------------------------------------------------------------------ *)

let run_sweep losses reps seed workers minutes out resume verbose =
  setup_logs verbose;
  let horizon = minutes *. 60.0 in
  let cell ~lease i loss =
    {
      Pte_tracheotomy.Emulation.default with
      lease;
      horizon;
      seed = seed + i;
      loss =
        (if loss = 0.0 then Pte_net.Loss.Perfect
         else Pte_net.Loss.wifi_interference ~average_loss:loss);
    }
  in
  let configs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i loss -> [ cell ~lease:true i loss; cell ~lease:false i loss ])
            losses))
  in
  let campaign, _ =
    Pte_tracheotomy.Trial.run_cells ?workers ?checkpoint:out ~resume ~reps
      ~seed configs
  in
  summary_line campaign;
  let table =
    Pte_util.Table.create
      ~title:
        (Fmt.str
           "Loss sweep campaign: %g-minute trials, seed %d, %d replicates"
           minutes seed reps)
      ~header:
        [ "avg loss"; "failures (lease)"; "failing reps (lease)";
          "failures (none)"; "failing reps (none)"; "longest pause none s" ]
      ~aligns:
        Pte_util.Table.[ Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iteri
    (fun i loss ->
      let agg j =
        Pte_tracheotomy.Trial.aggregate_of_cell
          campaign.Pte_campaign.Runner.cells.(j)
      in
      let w = agg (2 * i) and n = agg ((2 * i) + 1) in
      Pte_util.Table.add_row table
        [ Fmt.str "%.0f%%" (100.0 *. loss);
          fmt_summary w.Pte_tracheotomy.Trial.failures;
          fmt_failing_reps w;
          fmt_summary n.Pte_tracheotomy.Trial.failures;
          fmt_failing_reps n;
          fmt_summary n.Pte_tracheotomy.Trial.longest_pause ])
    losses;
  Pte_util.Table.print table;
  exit_of_campaign campaign

(* ------------------------------------------------------------------ *)
(* certify subcommand                                                 *)
(* ------------------------------------------------------------------ *)

let run_certify smoke target confidence particles stages min_effective
    no_screen cseed workers cminutes json verbose =
  setup_logs verbose;
  let module C = Pte_tracheotomy.Certify in
  let base = if smoke then C.smoke else C.default in
  let value v default = Option.value v ~default in
  let config =
    {
      base with
      C.target = value target base.C.target;
      confidence = value confidence base.C.confidence;
      min_effective = value min_effective base.C.min_effective;
      horizon =
        (match cminutes with
        | Some m -> m *. 60.0
        | None -> base.C.horizon);
      screen = (if no_screen then None else base.C.screen);
      split =
        {
          base.C.split with
          Pte_rare.Split.particles =
            value particles base.C.split.Pte_rare.Split.particles;
          max_stages = value stages base.C.split.Pte_rare.Split.max_stages;
        };
      seed = value cseed base.C.seed;
      workers;
    }
  in
  let report = C.run ~config () in
  Fmt.pr "%a@." C.pp_report report;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Pte_campaign.Json.to_string (C.report_to_json report) ^ "\n")))
    json;
  exit (C.exit_code report)

(* ------------------------------------------------------------------ *)
(* terms                                                              *)
(* ------------------------------------------------------------------ *)

let pos_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Fmt.str "expected a positive number, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let reps =
  Arg.(
    value & opt pos_int 5
    & info [ "reps" ] ~docv:"N" ~doc:"Independently-seeded replicates per cell.")

let seed =
  Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"N" ~doc:"Campaign master seed.")

let workers =
  Arg.(
    value & opt (some pos_int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains (default: all available cores).")

let minutes =
  Arg.(
    value & opt float 30.0
    & info [ "minutes" ] ~docv:"MIN" ~doc:"Simulated length of each trial.")

let out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Append each completed trial to this JSONL checkpoint file.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:"Skip jobs already recorded in the $(b,--out) file.")

let verbose =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Report progress (trials/s, ETA) on stderr.")

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Run the four Table I cells as a campaign.")
    Term.(
      const run_table1 $ reps $ seed $ workers $ minutes $ out $ resume
      $ verbose)

let losses =
  Arg.(
    value
    & opt (list float) [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ]
    & info [ "losses" ] ~docv:"P,P,..."
        ~doc:"Average loss rates to sweep (with and without lease each).")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep average loss rates, with vs without lease (X1-style).")
    Term.(
      const run_sweep $ losses $ reps $ seed $ workers $ minutes $ out $ resume
      $ verbose)

let certify_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Seconds-scale CI preset: 5-minute trials, 16 particles x 10 \
             stages, target 1e-3.")
  in
  let target =
    Arg.(
      value & opt (some float) None
      & info [ "target" ] ~docv:"P" ~doc:"Violation-rate bound to certify.")
  in
  let confidence =
    Arg.(
      value & opt (some float) None
      & info [ "confidence" ] ~docv:"C"
          ~doc:"Joint confidence of the certificate.")
  in
  let particles =
    Arg.(
      value & opt (some pos_int) None
      & info [ "particles" ] ~docv:"N"
          ~doc:"Splitting population per stage.")
  in
  let stages =
    Arg.(
      value & opt (some pos_int) None
      & info [ "stages" ] ~docv:"N" ~doc:"Splitting stage budget.")
  in
  let min_effective =
    Arg.(
      value & opt (some float) None
      & info [ "min-effective" ] ~docv:"N"
          ~doc:
            "Effective-trial floor below which a reached bound is reported \
             but not certified.")
  in
  let no_screen =
    Arg.(
      value & flag
      & info [ "no-screen" ]
          ~doc:"Skip the SPRT screen and go straight to splitting.")
  in
  let cseed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Certification master seed.")
  in
  let cminutes =
    Arg.(
      value & opt (some float) None
      & info [ "minutes" ] ~docv:"MIN" ~doc:"Simulated length of each trial.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full report (stages, bounds, verdicts) as JSON.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Certify a rare-event violation bound: SPRT screen, then importance \
          splitting over fault-plan severity. Exit 0 only when with-lease \
          certifies and without-lease fails to.")
    Term.(
      const run_certify $ smoke $ target $ confidence $ particles $ stages
      $ min_effective $ no_screen $ cseed $ workers $ cminutes $ json
      $ verbose)

let cmd =
  Cmd.group
    (Cmd.info "pte-campaign"
       ~doc:"parallel, checkpointable Monte-Carlo emulation campaigns"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs grids of laser-tracheotomy emulation trials on a pool of \
              worker domains. Per-trial PRNG streams are split off the master \
              seed by job index, so results are identical at any worker count \
              and across checkpoint/resume cycles.";
         ])
    [ table1_cmd; sweep_cmd; certify_cmd ]

let () =
  match Cmd.eval_value ~catch:false cmd with
  | exception Pte_campaign.Checkpoint.Mismatch msg ->
      Fmt.epr "pte-campaign: %s@." msg;
      exit 3
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error `Parse -> exit Cmd.Exit.cli_error
  | Error (`Term | `Exn) -> exit Cmd.Exit.internal_error
