(* `pte-faults`: deterministic fault injection against the
   laser-tracheotomy emulation.

     dune exec bin/pte_faults_cli.exe -- inject --plan plan.json
     dune exec bin/pte_faults_cli.exe -- inject --artifact minimal.json
     dune exec bin/pte_faults_cli.exe -- coverage --minutes 10
     dune exec bin/pte_faults_cli.exe -- fuzz --trials 20 --out-dir artifacts

   A plan (or fuzz seed) plus a trial seed replays byte-identically, so
   every failure this tool finds is a checked-in-able artifact. *)

open Cmdliner
module Plan = Pte_faults.Plan
module Robustness = Pte_tracheotomy.Robustness

let setup_logs verbose =
  if verbose then begin
    let reporter =
      let report _src level ~over k msgf =
        msgf (fun ?header:_ ?tags:_ fmt ->
            let k _ = over (); k () in
            Format.kfprintf k Format.err_formatter
              ("[%s] " ^^ fmt ^^ "@.")
              (match level with
              | Logs.Error -> "error"
              | Logs.Warning -> "warn"
              | _ -> "info"))
      in
      { Logs.report }
    in
    Logs.set_reporter reporter;
    Logs.set_level (Some Logs.Warning)
  end

let or_die = function
  | Ok v -> v
  | Error msg ->
      Fmt.epr "pte-faults: %s@." msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* inject subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_inject plan_file artifact_file no_lease seed minutes loss_model
    verbose =
  setup_logs verbose;
  let artifact =
    match (plan_file, artifact_file) with
    | Some _, Some _ ->
        or_die (Error "--plan and --artifact are mutually exclusive")
    | None, None -> or_die (Error "one of --plan or --artifact is required")
    | None, Some file -> or_die (Robustness.load_artifact file)
    | Some file, None ->
        let plan = or_die (Plan.load file) in
        {
          Robustness.plan;
          trial_seed = seed;
          horizon = minutes *. 60.0;
          lease = not no_lease;
          failures = 0;
        }
  in
  Fmt.pr "plan:@.%a@." Plan.pp artifact.Robustness.plan;
  (* a stochastic channel on top of the scripted plan is opt-in: the
     default perfect channel keeps the scripted faults the only loss *)
  let config =
    match loss_model with
    | None -> Robustness.artifact_config artifact
    | Some kind ->
        Fmt.pr "channel: %a@." Pte_net.Loss.pp_kind kind;
        { (Robustness.artifact_config artifact) with
          Pte_tracheotomy.Emulation.loss = kind }
  in
  let result = Pte_tracheotomy.Trial.run config in
  Fmt.pr "trial (seed %d, %gs, lease %b): %a@." artifact.Robustness.trial_seed
    artifact.Robustness.horizon artifact.Robustness.lease
    Pte_tracheotomy.Trial.pp_result result;
  Fmt.pr "faults fired: %d@." result.Pte_tracheotomy.Trial.faults_fired;
  if result.Pte_tracheotomy.Trial.failures > 0 then begin
    List.iter
      (fun v -> Fmt.pr "violation: %a@." Pte_core.Monitor.pp_violation v)
      result.Pte_tracheotomy.Trial.violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* coverage subcommand                                                *)
(* ------------------------------------------------------------------ *)

let run_coverage occurrences minutes seed workers out resume transport verbose =
  setup_logs verbose;
  let transport : Pte_net.Transport.mode = transport in
  let c =
    Robustness.coverage ?workers ?checkpoint:out ~resume ~occurrences
      ~horizon:(minutes *. 60.0) ~seed ~transport ()
  in
  Fmt.pr "%a@." Robustness.pp_coverage c;
  if
    c.Robustness.with_lease_violations > 0
    || c.Robustness.roots_targeted < c.Robustness.roots_total
  then exit 1

(* ------------------------------------------------------------------ *)
(* fuzz subcommand                                                    *)
(* ------------------------------------------------------------------ *)

let run_fuzz trials seed minutes no_lease budget out_dir verbose =
  setup_logs verbose;
  let log = if verbose then fun s -> Fmt.epr "[fuzz] %s@." s else ignore in
  let report =
    Robustness.fuzz ~horizon:(minutes *. 60.0) ~lease:(not no_lease)
      ~max_oracle_calls:budget ~log ~seed ~trials ()
  in
  Fmt.pr "%a@." Robustness.pp_fuzz_report report;
  (match out_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iteri
        (fun i a ->
          let path = Filename.concat dir (Fmt.str "counterexample-%02d.json" i) in
          Robustness.save_artifact a path;
          Fmt.pr "wrote %s@." path)
        report.Robustness.artifacts)

(* ------------------------------------------------------------------ *)
(* terms                                                              *)
(* ------------------------------------------------------------------ *)

let seed =
  Arg.(value & opt int 7100 & info [ "seed" ] ~docv:"N" ~doc:"Master seed.")

let minutes =
  Arg.(
    value & opt float 10.0
    & info [ "minutes" ] ~docv:"MIN" ~doc:"Simulated length of each trial.")

let no_lease =
  Arg.(
    value & flag
    & info [ "no-lease" ]
        ~doc:"Run the without-lease baseline instead of the lease design.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Report progress on stderr.")

let inject_cmd =
  let plan_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "plan" ] ~docv:"FILE" ~doc:"Fault-plan JSON file to inject.")
  in
  let artifact_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "artifact" ] ~docv:"FILE"
          ~doc:
            "Counterexample artifact to replay (carries its own seed, \
             horizon and lease mode).")
  in
  let loss_model =
    Arg.(
      value
      & opt (some Pte_net.Loss.conv) None
      & info [ "loss-model" ] ~docv:"MODEL"
          ~doc:
            "Stochastic channel to run the plan over instead of the default \
             perfect one: $(b,perfect), $(b,wifi:)$(i,avg), \
             $(b,bernoulli:)$(i,p), \
             $(b,ge:)$(i,to_bad,to_good,loss_good,loss_bad) or \
             $(b,interferer:)$(i,period,burst,loss_during,loss_idle).")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Run one trial under a fault plan (or replay an artifact); exit 1 \
          if PTE is violated.")
    Term.(
      const run_inject $ plan_file $ artifact_file $ no_lease $ seed $ minutes
      $ loss_model $ verbose)

let coverage_cmd =
  let occurrences =
    Arg.(
      value & opt int 2
      & info [ "occurrences" ] ~docv:"K"
          ~doc:"Target the first $(docv) occurrences of each message root.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains (default: all available cores).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Append each completed trial to this JSONL checkpoint file.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip trials already recorded in the $(b,--out) file.")
  in
  let transport =
    Arg.(
      value
      & opt Pte_net.Transport.conv `Bare
      & info [ "transport" ] ~docv:"MODE"
          ~doc:
            "Radio transport the trials run over: $(b,bare) (single-shot \
             sends), $(b,reliable)[:$(i,k=v),...] (event-driven \
             ACK/retransmission; scripted drops are then expected to be \
             recovered) or $(b,scheduled)[:$(i,k=v),...] (time-triggered \
             TDMA rounds with blind retransmissions).")
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Drop every protocol message root x occurrence, with and without \
          lease; print the coverage matrix; exit 1 if the lease design ever \
          violates PTE.")
    Term.(
      const run_coverage $ occurrences $ minutes $ seed $ workers $ out
      $ resume $ transport $ verbose)

let fuzz_cmd =
  let trials =
    Arg.(
      value & opt int 10
      & info [ "trials" ] ~docv:"N" ~doc:"Random plans to generate and run.")
  in
  let budget =
    Arg.(
      value & opt int 60
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Max trial replays the shrinker may spend per counterexample.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write each minimal counterexample artifact into $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Random fault plans (drops, corruption, delays, duplicates, \
          crashes, clock drift); shrink every violating plan to a minimal \
          replayable artifact.")
    Term.(
      const run_fuzz $ trials $ seed $ minutes $ no_lease $ budget $ out_dir
      $ verbose)

let cmd =
  Cmd.group
    (Cmd.info "pte-faults"
       ~doc:"deterministic fault injection for the PTE lease design"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Injects scripted packet faults (drop / corrupt / delay / \
              duplicate, selected by link, event root, occurrence and time \
              window) and node faults (crash-and-reboot, clock drift) into \
              the laser-tracheotomy emulation. Plans are JSON and replay \
              byte-identically from (plan, seed).";
         ])
    [ inject_cmd; coverage_cmd; fuzz_cmd ]

let () =
  match Cmd.eval_value ~catch:false cmd with
  | exception Pte_campaign.Checkpoint.Mismatch msg ->
      Fmt.epr "pte-faults: %s@." msg;
      exit 3
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error `Parse -> exit Cmd.Exit.cli_error
  | Error (`Term | `Exn) -> exit Cmd.Exit.internal_error
