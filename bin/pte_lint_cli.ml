(* `pte-lint`: static model analysis over the shipped hybrid-automata
   systems. Exits 0 when no errors are found, 1 on errors, 2 on usage
   mistakes (unknown system name).

     dune exec bin/pte_lint.exe --                 # lint every clean system
     dune exec bin/pte_lint.exe -- tracheotomy-nolease   # exits 1 (L020…)
     dune exec bin/pte_lint.exe -- --json pattern
     dune exec bin/pte_lint.exe -- --codes          # the diagnostic registry *)

open Cmdliner
module Lint = Pte_lint.Lint
module Diagnostic = Pte_lint.Diagnostic

let star params =
  Some
    {
      Pte_lint.Sync.base = params.Pte_core.Params.supervisor;
      remotes = Pte_core.Pattern.remotes params;
    }

let pattern_config params =
  { Lint.default_config with topology = star params }

let synthesized n =
  let entity_names = List.init n (fun i -> Fmt.str "entity%d" (i + 1)) in
  let safeguards =
    List.init (n - 1) (fun _ ->
        { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 })
  in
  Pte_core.Synthesis.synthesize_exn
    (Pte_core.Synthesis.default_requirements ~entity_names ~safeguards)

let tracheotomy_system ~lease () =
  let params = Pte_core.Params.case_study in
  Pte_hybrid.System.make ~name:"laser-tracheotomy"
    [
      Pte_core.Pattern.supervisor params;
      Pte_tracheotomy.Ventilator.participant ~lease params;
      Pte_core.Pattern.initializer_ ~lease params;
      Pte_tracheotomy.Patient.automaton;
    ]

let tracheotomy_config =
  {
    (pattern_config Pte_core.Params.case_study) with
    observable_roots = [ "evtVPumpIn"; "evtVPumpOut" ];
  }

let multi_config ~params ~initiators =
  match
    Pte_core.Multi.validate_config { Pte_core.Multi.params; initiators }
  with
  | Ok () -> { Pte_core.Multi.params; initiators }
  | Error msg -> invalid_arg msg

(* name, how to build the system, lint configuration, and whether a
   default (no-argument) run covers it. The `-nolease` variants are the
   paper's "without Lease" baselines: they fail L020/L010 by design and
   are only linted when named explicitly. *)
let systems =
  [
    ( "pattern",
      (fun () -> Pte_core.Pattern.system Pte_core.Params.case_study),
      pattern_config Pte_core.Params.case_study,
      `Clean );
    ( "pattern-n3",
      (fun () -> Pte_core.Pattern.system (synthesized 3)),
      pattern_config (synthesized 3),
      `Clean );
    ( "pattern-n4",
      (fun () -> Pte_core.Pattern.system (synthesized 4)),
      pattern_config (synthesized 4),
      `Clean );
    ( "pattern-nolease",
      (fun () -> Pte_core.Pattern.system ~lease:false Pte_core.Params.case_study),
      pattern_config Pte_core.Params.case_study,
      `Dirty );
    ( "tracheotomy",
      tracheotomy_system ~lease:true,
      tracheotomy_config,
      `Clean );
    ( "tracheotomy-bare",
      (fun () ->
        Pte_hybrid.System.make ~name:"ventilator-standalone"
          [ Pte_tracheotomy.Ventilator.stand_alone ]),
      { Lint.default_config with
        observable_roots = [ "evtVPumpIn"; "evtVPumpOut" ] },
      `Clean );
    ( "tracheotomy-nolease",
      tracheotomy_system ~lease:false,
      tracheotomy_config,
      `Dirty );
    ( "multi",
      (fun () ->
        Pte_core.Multi.system
          (multi_config ~params:Pte_core.Params.case_study ~initiators:[ 1; 2 ])),
      pattern_config Pte_core.Params.case_study,
      `Clean );
    ( "multi-n3",
      (fun () ->
        Pte_core.Multi.system
          (multi_config ~params:(synthesized 3) ~initiators:[ 1; 3 ])),
      pattern_config (synthesized 3),
      `Clean );
  ]

let known_names = List.map (fun (n, _, _, _) -> n) systems

let list_codes () =
  List.iter
    (fun (i : Diagnostic.info) ->
      Fmt.pr "%s  %-7s %s@." i.Diagnostic.info_code
        (Fmt.str "%a" Diagnostic.pp_severity i.Diagnostic.info_severity)
        i.Diagnostic.title)
    Diagnostic.registry

let lint_one ~json name =
  match List.find_opt (fun (n, _, _, _) -> String.equal n name) systems with
  | None ->
      Fmt.epr "unknown system %S; choose from: %s@." name
        (String.concat ", " known_names);
      exit 2
  | Some (_, build, config, _) ->
      let diags = Lint.lint_system ~config (build ()) in
      if json then
        Fmt.pr "%s@." (Pte_util.Json.to_string (Lint.to_json ~system:name diags))
      else Fmt.pr "== %s: %a@." name Lint.pp_report diags;
      diags

let run codes json names =
  if codes then (
    list_codes ();
    0)
  else
    let names =
      match names with
      | [] ->
          List.filter_map
            (fun (n, _, _, status) -> if status = `Clean then Some n else None)
            systems
      | names -> names
    in
    let diags = List.concat_map (lint_one ~json) names in
    if Lint.has_errors diags then 1 else 0

let cmd =
  let codes =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON report object per system.")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SYSTEM"
          ~doc:
            (Fmt.str
               "Systems to lint (default: every shipped clean system). Known: \
                %s."
               (String.concat ", " known_names)))
  in
  let doc = "static model analysis over the shipped hybrid-automata systems" in
  Cmd.v (Cmd.info "pte-lint" ~doc) Term.(const run $ codes $ json $ names)

let () = exit (Cmd.eval' cmd)
