(* `pte-check`: verify Theorem 1's conditions c1-c7 for a configuration,
   or synthesize one from safety requirements.

     dune exec bin/pte_check.exe                      # the case study
     dune exec bin/pte_check.exe -- --t-enter-2 3     # break c5
     dune exec bin/pte_check.exe -- --synthesize a,b,c --run 15 *)

open Cmdliner

let override value replacement = match replacement with Some v -> v | None -> value

(* Per-transport worst-case latency vs the Theorem-1 delay budget, on a
   probe star with the default channel delays (the emulation's): the
   1.93 s / 2.0 s numbers of DESIGN §8 and the synthesized schedule's
   bound of §10, reproducible from the CLI. *)
let report_transports p =
  let budget = Pte_core.Constraints.max_delay_budget p in
  let probe =
    Pte_net.Star.create ~base:p.Pte_core.Params.supervisor
      ~remotes:(Pte_core.Pattern.remotes p)
      ~loss_kind:Pte_net.Loss.Perfect
      ~rng:(Pte_util.Rng.create 0) ()
  in
  let frame_delay = Pte_net.Star.worst_frame_delay probe in
  let reliable =
    Pte_net.Transport.worst_case_latency Pte_net.Transport.default_config
      ~frame_delay
  in
  let scheduled =
    match
      Pte_sched.Synth.synthesize
        { Pte_sched.Synth.default_policy with budget = Some budget }
        ~links:(Pte_net.Star.schedule_links probe)
    with
    | Ok sched -> Ok (Pte_sched.Schedule.worst_case_latency sched)
    | Error e -> Error (Pte_sched.Synth.error_to_string e)
  in
  Fmt.pr "Theorem-1 delay budget: %.3f s (c1-c7 under message delay)@." budget;
  let row label = function
    | Ok wcl ->
        Fmt.pr "  %-24s worst-case %.3f s  slack %+.3f s@." label wcl
          (Pte_core.Constraints.delay_slack p ~delay:wcl);
        wcl <= budget
    | Error msg ->
        Fmt.pr "  %-24s %s@." label msg;
        false
  in
  let ok_bare = row "bare" (Ok frame_delay) in
  let ok_rel = row "reliable (default)" (Ok reliable) in
  let ok_sched = row "scheduled (synthesized)" scheduled in
  exit (if ok_bare && ok_rel && ok_sched then 0 else 1)

(* The loss × k × hold watchdog sweep of DESIGN §11: exercise candidate
   degraded-safe-mode parameterizations against scripted blackouts and
   print the synthesized (k, hold), or fail when none qualifies. *)
let report_degraded_sweep p ~workers ~max_false_trips =
  let config = Pte_tracheotomy.Degraded_synth.default_config p in
  Fmt.pr "degraded watchdog sweep: losses %a, k %a, hold %a, blackouts %a@."
    Fmt.(list ~sep:comma (fmt "%g"))
    config.Pte_tracheotomy.Degraded_synth.losses
    Fmt.(list ~sep:comma int)
    config.Pte_tracheotomy.Degraded_synth.ks
    Fmt.(list ~sep:comma (fmt "%g"))
    config.Pte_tracheotomy.Degraded_synth.holds
    Fmt.(
      list ~sep:comma (fun ppf (start, duration) ->
          pf ppf "%gs+%gs" start duration))
    config.Pte_tracheotomy.Degraded_synth.blackouts;
  let cells, choice =
    Pte_tracheotomy.Degraded_synth.synthesize ?workers ~max_false_trips config
  in
  List.iter
    (fun cell -> Fmt.pr "  %a@." Pte_tracheotomy.Degraded.pp_sweep_cell cell)
    cells;
  match choice with
  | Some c ->
      Fmt.pr "synthesized watchdog: %a@." Pte_tracheotomy.Degraded.pp_choice c;
      exit 0
  | None ->
      Fmt.pr "no (k, hold) pair qualifies@.";
      exit 1

(* The rare-event certification engine (DESIGN §12): SPRT screen, then
   importance splitting over fault-plan severity. Prints per-cell
   stopping verdicts, splitting levels and the joint upper bound; exits
   0 only when the with-lease design certifies the target AND the
   without-lease baseline fails to (the case study's expected shape). *)
let report_certify ~target ~confidence ~minutes ~particles ~stages ~screen
    ~min_effective ~seed ~workers =
  let module C = Pte_tracheotomy.Certify in
  let base = C.default in
  let config =
    {
      base with
      C.target;
      confidence;
      min_effective;
      horizon = minutes *. 60.0;
      screen = (if screen then base.C.screen else None);
      split =
        { base.C.split with Pte_rare.Split.particles; max_stages = stages };
      seed;
      workers;
    }
  in
  let report = C.run ~config () in
  Fmt.pr "%a@." C.pp_report report;
  exit (C.exit_code report)

let check t_wait t_fb t_req t_enter_1 t_run_1 t_exit_1 t_enter_2 t_run_2
    t_exit_2 synthesize run_time transports degraded_sweep workers
    max_false_trips certify target confidence minutes particles stages
    no_screen min_effective seed =
  match synthesize with
  | Some names ->
      let entity_names = String.split_on_char ',' names in
      let n = List.length entity_names in
      if n < 2 then begin
        Fmt.epr "need at least two comma-separated entity names@.";
        exit 2
      end;
      let r =
        {
          (Pte_core.Synthesis.default_requirements ~entity_names
             ~safeguards:
               (List.init (n - 1) (fun _ ->
                    { Pte_core.Params.enter_risky_min = 2.0; exit_safe_min = 1.0 })))
          with
          Pte_core.Synthesis.initializer_run = run_time;
        }
      in
      (match Pte_core.Synthesis.synthesize r with
      | Ok p ->
          Fmt.pr "%a@.@.%a@." Pte_core.Params.pp p Pte_core.Constraints.pp_report
            (Pte_core.Constraints.check p)
      | Error e ->
          Fmt.epr "synthesis failed: %a@." Pte_core.Synthesis.pp_error e;
          exit 1)
  | None ->
      let base = Pte_core.Params.case_study in
      let e1 = base.Pte_core.Params.entities.(0) in
      let e2 = base.Pte_core.Params.entities.(1) in
      let p =
        {
          base with
          Pte_core.Params.t_wait_max = override base.Pte_core.Params.t_wait_max t_wait;
          t_fb_min = override base.Pte_core.Params.t_fb_min t_fb;
          t_req_max = override base.Pte_core.Params.t_req_max t_req;
          entities =
            [|
              { e1 with
                Pte_core.Params.t_enter_max = override e1.Pte_core.Params.t_enter_max t_enter_1;
                t_run_max = override e1.Pte_core.Params.t_run_max t_run_1;
                t_exit = override e1.Pte_core.Params.t_exit t_exit_1 };
              { e2 with
                Pte_core.Params.t_enter_max = override e2.Pte_core.Params.t_enter_max t_enter_2;
                t_run_max = override e2.Pte_core.Params.t_run_max t_run_2;
                t_exit = override e2.Pte_core.Params.t_exit t_exit_2 };
            |];
        }
      in
      if transports then report_transports p;
      if degraded_sweep then report_degraded_sweep p ~workers ~max_false_trips;
      if certify then
        report_certify ~target ~confidence ~minutes ~particles ~stages
          ~screen:(not no_screen) ~min_effective ~seed ~workers;
      Fmt.pr "%a@.@." Pte_core.Params.pp p;
      let outcomes = Pte_core.Constraints.check p in
      Fmt.pr "%a@." Pte_core.Constraints.pp_report outcomes;
      exit (if Pte_core.Constraints.all_ok outcomes then 0 else 1)

let cmd =
  let opt_f name doc = Arg.(value & opt (some float) None & info [ name ] ~docv:"S" ~doc) in
  let synthesize =
    Arg.(
      value
      & opt (some string) None
      & info [ "synthesize" ] ~docv:"NAMES"
          ~doc:"Synthesize constants for the comma-separated PTE chain instead of checking.")
  in
  let run_time =
    Arg.(value & opt float 20.0 & info [ "run" ] ~docv:"S" ~doc:"Initializer run time for --synthesize.")
  in
  let transports =
    Arg.(
      value & flag
      & info [ "transports" ]
          ~doc:
            "Report the worst-case latency and remaining Theorem-1 slack of \
             every transport mode (bare, reliable defaults, synthesized \
             schedule) instead of the c1-c7 report; exit 1 if any mode \
             overshoots the budget.")
  in
  let degraded_sweep =
    Arg.(
      value & flag
      & info [ "degraded-sweep" ]
          ~doc:
            "Sweep degraded-safe-mode watchdog candidates (k, hold) against \
             scripted channel blackouts over a grid of background loss \
             levels, classify every trip as justified or false, and print \
             the synthesized pair; exit 1 when no pair detects every \
             blackout without false trips.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker processes for --degraded-sweep (default: all cores).")
  in
  let max_false_trips =
    Arg.(
      value
      & opt int 0
      & info [ "max-false-trips" ] ~docv:"N"
          ~doc:
            "False-trip budget for --degraded-sweep: a (k, hold) pair still \
             qualifies with up to $(docv) trips outside the blackout \
             windows, summed over the sweep (availability given away, never \
             safety).")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Run the rare-event certification engine on the case study: an \
             SPRT screen of the violation rate, then importance splitting \
             over fault-plan severity bounding it far below what fixed \
             replicate counts can see. Exit 0 only when the with-lease \
             design certifies the target bound and the without-lease \
             baseline fails to.")
  in
  let target =
    Arg.(
      value & opt float 1e-6
      & info [ "target" ] ~docv:"P"
          ~doc:"Violation-rate bound to certify (with --certify).")
  in
  let confidence =
    Arg.(
      value & opt float 0.99
      & info [ "confidence" ] ~docv:"C"
          ~doc:"Joint confidence of the certificate (with --certify).")
  in
  let minutes =
    Arg.(
      value & opt float 30.0
      & info [ "certify-minutes" ] ~docv:"MIN"
          ~doc:"Trial horizon in minutes (with --certify).")
  in
  let particles =
    Arg.(
      value & opt int 64
      & info [ "particles" ] ~docv:"N"
          ~doc:"Splitting population per stage (with --certify).")
  in
  let stages =
    Arg.(
      value & opt int 16
      & info [ "stages" ] ~docv:"N"
          ~doc:"Splitting stage budget (with --certify).")
  in
  let no_screen =
    Arg.(
      value & flag
      & info [ "no-screen" ]
          ~doc:"Skip the SPRT screen and go straight to splitting.")
  in
  let min_effective =
    Arg.(
      value & opt float 1e6
      & info [ "min-effective" ] ~docv:"N"
          ~doc:
            "Effective-trial floor below which a reached bound is reported \
             but not certified (with --certify).")
  in
  let cseed =
    Arg.(
      value & opt int 9300
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed for --certify (split per phase and particle).")
  in
  let doc = "check Theorem 1's conditions c1-c7 or synthesize a configuration" in
  Cmd.v
    (Cmd.info "pte-check" ~doc)
    Term.(
      const check
      $ opt_f "t-wait" "Override T_wait."
      $ opt_f "t-fb" "Override T_fb,0."
      $ opt_f "t-req" "Override T_req,N."
      $ opt_f "t-enter-1" "Override the ventilator's T_enter."
      $ opt_f "t-run-1" "Override the ventilator's T_run."
      $ opt_f "t-exit-1" "Override the ventilator's T_exit."
      $ opt_f "t-enter-2" "Override the laser's T_enter."
      $ opt_f "t-run-2" "Override the laser's T_run."
      $ opt_f "t-exit-2" "Override the laser's T_exit."
      $ synthesize $ run_time $ transports $ degraded_sweep $ workers
      $ max_false_trips $ certify $ target $ confidence $ minutes $ particles
      $ stages $ no_screen $ min_effective $ cseed)

let () = exit (Cmd.eval cmd)
