(* `pte-sim`: run laser-tracheotomy emulation trials from the command
   line.

     dune exec bin/pte_sim_cli.exe -- --minutes 30 --e-toff 18 --no-lease
     dune exec bin/pte_sim_cli.exe -- --table1
     dune exec bin/pte_sim_cli.exe -- --loss 0.4 --seed 7 --verbose *)

open Cmdliner

let run table1 lease minutes e_ton e_toff loss loss_model seed reps workers
    transport verbose =
  let transport_mode : Pte_net.Transport.mode = transport in
  if table1 then begin
    if reps > 1 then
      Fmt.pr "Table I reproduction (seed %d, %d replicates):@." seed reps
    else Fmt.pr "Table I reproduction (seed %d):@." seed;
    List.iter
      (fun (mode, e_toff, (row : Pte_tracheotomy.Trial.replicated)) ->
        Fmt.pr "  %-14s E(Toff)=%4.1fs : %a@." mode e_toff
          Pte_tracheotomy.Trial.pp_result row.Pte_tracheotomy.Trial.rep0;
        if reps > 1 then
          Fmt.pr "  %-14s %12s : %a@." "" "aggregate"
            Pte_tracheotomy.Trial.pp_aggregate row.Pte_tracheotomy.Trial.agg)
      (Pte_tracheotomy.Trial.table1 ~seed ~reps ?workers ())
  end
  else begin
    let config =
      {
        Pte_tracheotomy.Emulation.default with
        lease;
        horizon = minutes *. 60.0;
        e_ton;
        e_toff;
        seed;
        transport = transport_mode;
        loss =
          (match loss_model with
          | Some kind -> kind
          | None ->
              if loss <= 0.0 then Pte_net.Loss.Perfect
              else Pte_net.Loss.wifi_interference ~average_loss:loss);
      }
    in
    (* an admissible-looking spec can still fail the Theorem-1 recheck
       at build time (retry budget or synthesized schedule past the
       delay slack): surface the reason, not a backtrace *)
    let r =
      try Pte_tracheotomy.Trial.run config
      with Invalid_argument msg ->
        Fmt.epr "pte-sim: %s@." msg;
        exit 2
    in
    let channel =
      match loss_model with
      | Some kind -> Fmt.str "%a" Pte_net.Loss.pp_kind kind
      | None -> Fmt.str "%g" loss
    in
    Fmt.pr "%.0f-minute trial (%s, E(Ton)=%gs, E(Toff)=%gs, loss %s, seed %d)@."
      minutes
      (if lease then "with lease" else "WITHOUT lease")
      e_ton e_toff channel seed;
    Fmt.pr "  %a@." Pte_tracheotomy.Trial.pp_result r;
    (match transport_mode with
    | `Bare -> ()
    | `Reliable cfg ->
        Fmt.pr "  transport: reliable (%a) retx:%d gave-up:%d dups:%d@."
          Pte_net.Transport.pp_config cfg r.Pte_tracheotomy.Trial.retransmissions
          r.Pte_tracheotomy.Trial.gave_up
          r.Pte_tracheotomy.Trial.dups_suppressed
    | `Scheduled _ ->
        let sched =
          match r.Pte_tracheotomy.Trial.schedule with
          | Some sched -> sched
          | None -> assert false (* scheduled trials always synthesize *)
        in
        Fmt.pr
          "  transport: scheduled (slots:%d period:%gs retries:%d depth:%d) \
           wcl-bound:%.2fs worst-seen:%.2fs gave-up:%d@."
          sched.Pte_sched.Schedule.slots_per_round
          (Pte_sched.Schedule.period sched)
          (match sched.Pte_sched.Schedule.entries with
          | e :: _ -> e.Pte_sched.Schedule.retries
          | [] -> 0)
          sched.Pte_sched.Schedule.depth
          (Pte_sched.Schedule.worst_case_latency sched)
          r.Pte_tracheotomy.Trial.worst_latency
          r.Pte_tracheotomy.Trial.gave_up
    | `Adaptive _ ->
        Fmt.pr
          "  transport: adaptive switches-up:%d switches-down:%d \
           switch-refusals:%d gave-up:%d worst-seen:%.2fs%s@."
          r.Pte_tracheotomy.Trial.mode_switches_up
          r.Pte_tracheotomy.Trial.mode_switches_down
          r.Pte_tracheotomy.Trial.switch_refusals
          r.Pte_tracheotomy.Trial.gave_up
          r.Pte_tracheotomy.Trial.worst_latency
          (match r.Pte_tracheotomy.Trial.schedule with
          | Some _ -> " (ended degraded)"
          | None -> ""));
    if verbose || r.Pte_tracheotomy.Trial.failures > 0 then
      List.iter
        (fun v -> Fmt.pr "  %a@." Pte_core.Monitor.pp_violation v)
        r.Pte_tracheotomy.Trial.violations;
    exit (if r.Pte_tracheotomy.Trial.failures > 0 then 1 else 0)
  end

let cmd =
  let table1 =
    Arg.(value & flag & info [ "table1" ] ~doc:"Run the four Table I trials.")
  in
  let lease =
    Arg.(
      value & opt bool true
      & info [ "lease" ] ~docv:"BOOL"
          ~doc:"Enable the lease mechanism (use $(b,--lease false) for the baseline).")
  in
  let minutes =
    Arg.(value & opt float 30.0 & info [ "minutes" ] ~docv:"MIN" ~doc:"Trial length.")
  in
  let e_ton =
    Arg.(value & opt float 30.0 & info [ "e-ton" ] ~docv:"S" ~doc:"Mean of the surgeon's request timer Ton.")
  in
  let e_toff =
    Arg.(value & opt float 18.0 & info [ "e-toff" ] ~docv:"S" ~doc:"Mean of the surgeon's cancel timer Toff.")
  in
  let loss =
    Arg.(value & opt float 0.25 & info [ "loss" ] ~docv:"P" ~doc:"Average channel loss rate (0 = perfect channel).")
  in
  let loss_model =
    Arg.(
      value
      & opt (some Pte_net.Loss.conv) None
      & info [ "loss-model" ] ~docv:"MODEL"
          ~doc:
            "Channel loss model, overriding $(b,--loss): $(b,perfect), \
             $(b,wifi:)$(i,avg) (the Table-I Gilbert-Elliott channel at \
             that average loss), $(b,bernoulli:)$(i,p), \
             $(b,ge:)$(i,to_bad,to_good,loss_good,loss_bad) (a raw \
             Gilbert-Elliott channel) or \
             $(b,interferer:)$(i,period,burst,loss_during,loss_idle) \
             (periodic WiFi bursts).")
  in
  let seed = Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let reps =
    Arg.(
      value & opt int 1
      & info [ "reps" ] ~docv:"N"
          ~doc:"Independently-seeded replicates per Table I row (campaign-backed).")
  in
  let workers =
    Arg.(
      value & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains for replicated runs (default: all cores).")
  in
  let transport =
    Arg.(
      value
      & opt Pte_net.Transport.conv `Bare
      & info [ "transport" ] ~docv:"MODE"
          ~doc:
            "Radio transport: $(b,bare) (single-shot sends, the paper's \
             model), $(b,reliable)[:$(i,k=v),...] (event-driven \
             ACK/retransmission; keys $(b,retries), $(b,rto), \
             $(b,multiplier), $(b,cap), $(b,jitter); the config is \
             validated and Theorem 1 is rechecked with the retry budget) or \
             $(b,scheduled)[:$(i,k=v),...] (time-triggered TDMA rounds with \
             blind retransmissions; keys $(b,slot), $(b,retries), \
             $(b,loss), $(b,confidence), $(b,depth), $(b,budget); the \
             schedule is synthesized against the star and Theorem 1 is \
             rechecked with its worst-case latency) or \
             $(b,adaptive)[:$(i,k=v),...] (online channel-health \
             estimation with safe runtime mode-switching; keys \
             $(b,healthy), $(b,degrade), $(b,recover), $(b,dwell), \
             $(b,samples), $(b,window), $(b,burst), $(b,budget); every \
             switch candidate is rechecked against Theorem 1 before \
             committing).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print all violations.") in
  let doc = "run laser-tracheotomy wireless-CPS emulation trials" in
  Cmd.v
    (Cmd.info "pte-sim" ~doc)
    Term.(
      const run $ table1 $ lease $ minutes $ e_ton $ e_toff $ loss $ loss_model
      $ seed $ reps $ workers $ transport $ verbose)

let () = exit (Cmd.eval cmd)
